package index

import (
	"testing"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

// FuzzParsePlaceholder: the parser must never panic and must round-trip
// everything it accepts.
func FuzzParsePlaceholder(f *testing.F) {
	f.Add([]byte("gearfp:d41d8cd98f00b204e9800998ecf8427e:123\n"))
	f.Add([]byte("gearfp:d41d8cd98f00b204e9800998ecf8427e-c2:0\n"))
	f.Add([]byte("gearfp::\n"))
	f.Add([]byte("not a placeholder"))
	f.Add([]byte{})
	f.Add([]byte("gearfp:zzzz:9"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fp, size, err := ParsePlaceholder(data)
		if err != nil {
			return
		}
		if err := fp.Validate(); err != nil {
			t.Fatalf("accepted invalid fingerprint %q: %v", fp, err)
		}
		if size < 0 {
			t.Fatalf("accepted negative size %d", size)
		}
		// Accepted records re-render to a parseable record with the same
		// meaning (not necessarily byte-identical: trailing newline).
		fp2, size2, err := ParsePlaceholder(Placeholder(fp, size))
		if err != nil || fp2 != fp || size2 != size {
			t.Fatalf("round trip: %s/%d -> %s/%d, %v", fp, size, fp2, size2, err)
		}
	})
}

// FuzzDecode: index JSON decoding must never panic, and everything it
// accepts must validate and re-encode.
func FuzzDecode(f *testing.F) {
	root := vfs.New()
	_ = root.MkdirAll("/a", 0o755)
	_ = root.WriteFile("/a/f", []byte("x"), 0o644)
	_ = root.Symlink("t", "/a/l")
	ix, _, err := Build("seed", "v1", imagefmt.Config{}, root, nil)
	if err != nil {
		f.Fatal(err)
	}
	enc, err := Encode(ix)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"a","tag":"b","root":{"name":"","type":2}}`))
	f.Add([]byte(`{"root":{"type":2,"children":[{"name":"x","type":1,"fingerprint":"00000000000000000000000000000000"}]}}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Decode(data)
		if err != nil {
			return
		}
		if err := ix.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid index: %v", err)
		}
		if _, err := Encode(ix); err != nil {
			t.Fatalf("accepted index fails to re-encode: %v", err)
		}
		// Files() must return valid, deduplicated references.
		seen := make(map[hashing.Fingerprint]bool)
		for _, ref := range ix.Files() {
			if seen[ref.Fingerprint] {
				t.Fatalf("duplicate file ref %s", ref.Fingerprint)
			}
			seen[ref.Fingerprint] = true
		}
	})
}

// FuzzDecodeBinary: the binary decoder must never panic and everything
// it accepts must validate and round-trip.
func FuzzDecodeBinary(f *testing.F) {
	root := vfs.New()
	_ = root.MkdirAll("/a", 0o755)
	_ = root.WriteFile("/a/f", []byte("x"), 0o644)
	_ = root.Symlink("t", "/a/l")
	ix, _, err := Build("seed", "v1", imagefmt.Config{}, root, nil)
	if err != nil {
		f.Fatal(err)
	}
	bin, err := EncodeBinary(ix)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bin)
	f.Add([]byte("GIX1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := DecodeBinary(data)
		if err != nil {
			return
		}
		if err := ix.Validate(); err != nil {
			t.Fatalf("DecodeBinary accepted invalid index: %v", err)
		}
		again, err := EncodeBinary(ix)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := DecodeBinary(again)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		a, _ := Encode(ix)
		b, _ := Encode(back)
		if string(a) != string(b) {
			t.Fatal("binary codec not a fixed point")
		}
	})
}
