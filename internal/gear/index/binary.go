package index

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

// Binary index codec. JSON spends ~50 bytes per entry mostly on hex
// fingerprints and field names; the binary form stores fingerprints as
// raw 16-byte MD5 values and structure as varints, roughly halving the
// index image — which matters because index bytes are pure overhead on
// top of the paper's storage-saving numbers (Fig 7).
//
// Layout:
//
//	magic "GIX1"
//	uvarint len + JSON(config)   — config stays JSON: tiny and schema-free
//	string name, string tag
//	entry tree, pre-order:
//	  string name, byte type, uvarint mode
//	  dir:     uvarint nchildren, children...
//	  regular: fingerprint, uvarint size, uvarint nchunks,
//	           nchunks x (fingerprint, uvarint size)
//	  symlink: string target
//	fingerprint: byte tag 0 + 16 raw bytes (plain MD5), or
//	             byte tag 1 + string     (collision-fallback IDs)
//	string: uvarint len + bytes
var binaryMagic = []byte("GIX1")

// EncodeBinary renders the index in the compact binary form.
func EncodeBinary(ix *Index) ([]byte, error) {
	if err := ix.Validate(); err != nil {
		return nil, err
	}
	cfg, err := json.Marshal(ix.Config)
	if err != nil {
		return nil, fmt.Errorf("index: encode binary config: %w", err)
	}
	var buf bytes.Buffer
	buf.Grow(len(binaryMagic) + len(cfg) + len(ix.Name) + len(ix.Tag) + 16 + entrySizeHint(ix.Root))
	buf.Write(binaryMagic)
	writeBytes(&buf, cfg)
	writeString(&buf, ix.Name)
	writeString(&buf, ix.Tag)
	if err := writeEntry(&buf, ix.Root); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeBinary parses and validates a binary index.
func DecodeBinary(data []byte) (*Index, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, binaryMagic) {
		return nil, fmt.Errorf("index: decode binary: bad magic: %w", ErrCorrupt)
	}
	cfgRaw, err := readBytes(r)
	if err != nil {
		return nil, fmt.Errorf("index: decode binary config: %w: %w", ErrCorrupt, err)
	}
	var cfg imagefmt.Config
	if err := json.Unmarshal(cfgRaw, &cfg); err != nil {
		return nil, fmt.Errorf("index: decode binary config: %w: %w", ErrCorrupt, err)
	}
	name, err := readString(r)
	if err != nil {
		return nil, fmt.Errorf("index: decode binary: %w: %w", ErrCorrupt, err)
	}
	tag, err := readString(r)
	if err != nil {
		return nil, fmt.Errorf("index: decode binary: %w: %w", ErrCorrupt, err)
	}
	root, err := readEntry(r, 0)
	if err != nil {
		return nil, fmt.Errorf("index: decode binary tree: %w: %w", ErrCorrupt, err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("index: decode binary: %d trailing bytes: %w", r.Len(), ErrCorrupt)
	}
	ix := &Index{Name: name, Tag: tag, Config: cfg, Root: root}
	if err := ix.Validate(); err != nil {
		return nil, err
	}
	return ix, nil
}

// maxBinaryDepth bounds tree recursion against adversarial input.
const maxBinaryDepth = 256

// entrySizeHint upper-bounds an entry's encoded size so EncodeBinary can
// allocate its buffer once: name + type byte + up-to-5-byte varints, a
// 17-byte raw fingerprint (fallback IDs may run longer, costing at most
// one buffer growth), and 22 bytes per chunk.
func entrySizeHint(e *Entry) int {
	n := len(e.Name) + 1 + 1 + 5
	switch {
	case len(e.Children) > 0:
		n += 5
		for _, c := range e.Children {
			n += entrySizeHint(c)
		}
	case len(e.Chunks) > 0:
		n += 17 + 10 + 5 + 22*len(e.Chunks)
	default:
		n += 17 + 10 + 5 + len(e.Target)
	}
	return n
}

func writeEntry(buf *bytes.Buffer, e *Entry) error {
	writeString(buf, e.Name)
	buf.WriteByte(byte(e.Type))
	writeUvarint(buf, uint64(e.Mode))
	switch e.Type {
	case vfs.TypeDir:
		writeUvarint(buf, uint64(len(e.Children)))
		for _, c := range e.Children {
			if err := writeEntry(buf, c); err != nil {
				return err
			}
		}
	case vfs.TypeRegular:
		if err := writeFingerprint(buf, e.Fingerprint); err != nil {
			return err
		}
		writeUvarint(buf, uint64(e.Size))
		writeUvarint(buf, uint64(len(e.Chunks)))
		for _, ch := range e.Chunks {
			if err := writeFingerprint(buf, ch.Fingerprint); err != nil {
				return err
			}
			writeUvarint(buf, uint64(ch.Size))
		}
	case vfs.TypeSymlink:
		writeString(buf, e.Target)
	default:
		return fmt.Errorf("index: encode binary: type %v: %w", e.Type, ErrCorrupt)
	}
	return nil
}

func readEntry(r *bytes.Reader, depth int) (*Entry, error) {
	if depth > maxBinaryDepth {
		return nil, fmt.Errorf("tree deeper than %d", maxBinaryDepth)
	}
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	typ, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	mode, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	e := &Entry{Name: name, Type: vfs.FileType(typ), Mode: fs.FileMode(mode)}
	switch e.Type {
	case vfs.TypeDir:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if n > uint64(r.Len()) {
			return nil, fmt.Errorf("child count %d exceeds input", n)
		}
		if n > 0 {
			// n is bounded by the remaining input, so the preallocation
			// cannot exceed the data we were handed.
			e.Children = make([]*Entry, 0, n)
		}
		for i := uint64(0); i < n; i++ {
			c, err := readEntry(r, depth+1)
			if err != nil {
				return nil, err
			}
			e.Children = append(e.Children, c)
		}
	case vfs.TypeRegular:
		fp, err := readFingerprint(r)
		if err != nil {
			return nil, err
		}
		size, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		e.Fingerprint = fp
		e.Size = int64(size)
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if n > uint64(r.Len()) {
			return nil, fmt.Errorf("chunk count %d exceeds input", n)
		}
		if n > 0 {
			e.Chunks = make([]Chunk, 0, n)
		}
		for i := uint64(0); i < n; i++ {
			cfp, err := readFingerprint(r)
			if err != nil {
				return nil, err
			}
			csize, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			e.Chunks = append(e.Chunks, Chunk{Fingerprint: cfp, Size: int64(csize)})
		}
	case vfs.TypeSymlink:
		target, err := readString(r)
		if err != nil {
			return nil, err
		}
		e.Target = target
	default:
		return nil, fmt.Errorf("entry type %d", typ)
	}
	return e, nil
}

func writeFingerprint(buf *bytes.Buffer, fp hashing.Fingerprint) error {
	if len(fp) == 32 {
		var raw [16]byte
		if _, err := hex.Decode(raw[:], []byte(fp)); err == nil {
			buf.WriteByte(0)
			buf.Write(raw[:])
			return nil
		}
	}
	if err := fp.Validate(); err != nil {
		return err
	}
	buf.WriteByte(1)
	writeString(buf, string(fp))
	return nil
}

func readFingerprint(r *bytes.Reader) (hashing.Fingerprint, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return "", err
	}
	switch tag {
	case 0:
		var raw [16]byte
		if _, err := io.ReadFull(r, raw[:]); err != nil {
			return "", err
		}
		var dst [32]byte
		hex.Encode(dst[:], raw[:])
		return hashing.Fingerprint(dst[:]), nil
	case 1:
		s, err := readString(r)
		if err != nil {
			return "", err
		}
		return hashing.Fingerprint(s), nil
	default:
		return "", fmt.Errorf("fingerprint tag %d", tag)
	}
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func writeString(buf *bytes.Buffer, s string) {
	writeUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func writeBytes(buf *bytes.Buffer, b []byte) {
	writeUvarint(buf, uint64(len(b)))
	buf.Write(b)
}

func readBytes(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("length %d exceeds input", n)
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, err
	}
	return out, nil
}

func readString(r *bytes.Reader) (string, error) {
	b, err := readBytes(r)
	return string(b), err
}
