// Package index implements the Gear index — the metadata half of a Gear
// image (§III-B of the paper). The index retains the directory structure
// of the original Docker image; every regular file is replaced by the MD5
// fingerprint of its content, so the index is tiny (the paper measures
// ~0.53 MB on average, ~1.1% of total image bytes) and a container can be
// launched as soon as it is downloaded.
//
// The index has three interchangeable representations:
//
//   - a typed tree (Index/Entry) used by the converter and driver;
//   - a placeholder filesystem (ToTree/FromTree) where each regular file
//     holds a one-line "gearfp:" record — this is the "index" directory
//     the Gear File Viewer mounts, and the fingerprint file the paper's
//     modified ovl_lookup_single() pauses on;
//   - a single-layer Docker image (ToImage/FromImage) so the unmodified
//     Docker distribution path can store and pull it (§III-C).
package index

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strconv"
	"strings"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

// Errors returned by index operations.
var (
	ErrCorrupt     = errors.New("corrupt gear index")
	ErrNotGearFile = errors.New("not a gear fingerprint placeholder")
)

// PlaceholderPrefix starts every fingerprint placeholder file's content.
const PlaceholderPrefix = "gearfp:"

// IndexLabel marks a single-layer Docker image as carrying a Gear index.
const IndexLabel = "io.gear.index"

// IndexFileName is where the serialized index lives inside its
// single-layer image (the compact binary form; see binary.go).
const IndexFileName = "/.gear/index.bin"

// Entry is one node of the Gear index tree.
type Entry struct {
	Name string       `json:"name"`
	Type vfs.FileType `json:"type"`
	Mode fs.FileMode  `json:"mode"`
	// Target is the symlink target (symlinks only).
	Target string `json:"target,omitempty"`
	// Fingerprint addresses the Gear file holding this regular file's
	// content (regular files only).
	Fingerprint hashing.Fingerprint `json:"fingerprint,omitempty"`
	// Size is the regular file's uncompressed size, kept in the index so
	// deploy planners can budget downloads without fetching anything.
	Size int64 `json:"size,omitempty"`
	// Chunks, when non-empty, split a big regular file into separately
	// addressed Gear files that concatenate to the full content. This is
	// the paper's future-work extension ("enable Gear to read big files
	// on demand in chunks", §VII); Fingerprint still identifies the whole
	// file. Chunked entries dedup and download at chunk granularity.
	Chunks []Chunk `json:"chunks,omitempty"`
	// Children are a directory's entries, sorted by name.
	Children []*Entry `json:"children,omitempty"`
}

// Chunk is one piece of a chunked regular file.
type Chunk struct {
	Fingerprint hashing.Fingerprint `json:"fingerprint"`
	Size        int64               `json:"size"`
}

// Index is a complete Gear index: the tree plus the image configuration
// the converter copies from the original Docker image (§III-C).
type Index struct {
	// Name and Tag identify the image the index was converted from.
	Name string `json:"name"`
	Tag  string `json:"tag"`
	// Config carries environment/entrypoint/etc. from the Docker image.
	Config imagefmt.Config `json:"config"`
	// Root is the directory tree ("" name, TypeDir).
	Root *Entry `json:"root"`
}

// Reference returns the canonical "name:tag" reference.
func (ix *Index) Reference() string { return ix.Name + ":" + ix.Tag }

// Build constructs an Index from a flattened image root filesystem,
// assigning fingerprints through reg (collision-safe content addressing)
// and collecting the Gear files into pool (fingerprint -> content).
func Build(name, tag string, cfg imagefmt.Config, root *vfs.FS, reg *hashing.Registry) (*Index, map[hashing.Fingerprint][]byte, error) {
	return BuildChunked(name, tag, cfg, root, reg, 0)
}

// BuildChunked is Build with the big-file extension enabled: regular
// files larger than chunkSize bytes are split into chunkSize pieces that
// are stored and fetched independently. chunkSize <= 0 disables chunking.
func BuildChunked(name, tag string, cfg imagefmt.Config, root *vfs.FS, reg *hashing.Registry, chunkSize int64) (*Index, map[hashing.Fingerprint][]byte, error) {
	return BuildPolicy(name, tag, cfg, root, reg, ChunkPolicy{FixedSize: chunkSize}, 1)
}

// BuildChunkedParallel is BuildChunked with the fingerprinting fanned out
// over a bounded worker pool — the CPU-bound hash over the many small
// files that dominates conversion time (Fig 6 of the paper). The output
// is bit-identical to BuildChunked for any worker count. workers <= 1 is
// the serial path.
func BuildChunkedParallel(name, tag string, cfg imagefmt.Config, root *vfs.FS, reg *hashing.Registry, chunkSize int64, workers int) (*Index, map[hashing.Fingerprint][]byte, error) {
	return BuildPolicy(name, tag, cfg, root, reg, ChunkPolicy{FixedSize: chunkSize}, workers)
}

// BuildPolicy is the general index builder: chunking follows pol (none,
// fixed-size, or content-defined; see ChunkPolicy) and fingerprinting
// fans out over workers. The output is bit-identical for any worker
// count: chunk boundaries depend only on pol and the file bytes, the
// tree walk collects every content item in exactly the order the serial
// builder would Assign it (whole file, then its chunks, in walk order),
// hashes run concurrently, and collision IDs are assigned sequentially
// in that order (see hashing.Registry.AssignAll).
func BuildPolicy(name, tag string, cfg imagefmt.Config, root *vfs.FS, reg *hashing.Registry, pol ChunkPolicy, workers int) (*Index, map[hashing.Fingerprint][]byte, error) {
	if err := pol.Validate(); err != nil {
		return nil, nil, fmt.Errorf("index: build %s:%s: %w", name, tag, err)
	}
	if reg == nil {
		reg = hashing.NewRegistry(nil)
	}
	b := &builder{reg: reg, pool: make(map[hashing.Fingerprint][]byte), pol: pol.normalized(), collect: workers > 1}
	rootEntry, err := b.buildEntry("", root.Root())
	if err != nil {
		return nil, nil, fmt.Errorf("index: build %s:%s: %w", name, tag, err)
	}
	ix := &Index{Name: name, Tag: tag, Config: cfg, Root: rootEntry}
	if !b.collect {
		return ix, b.pool, nil
	}
	items := make([][]byte, len(b.slots))
	for i, s := range b.slots {
		items[i] = s.data
	}
	fps := reg.AssignAll(items, workers)
	for i, s := range b.slots {
		fp := fps[i]
		if s.chunk {
			s.entry.Chunks = append(s.entry.Chunks, Chunk{Fingerprint: fp, Size: int64(len(s.data))})
			b.pool[fp] = s.data
		} else {
			s.entry.Fingerprint = fp
			if !s.chunked {
				b.pool[fp] = s.data
			}
		}
	}
	return ix, b.pool, nil
}

type builder struct {
	reg  *hashing.Registry
	pool map[hashing.Fingerprint][]byte
	pol  ChunkPolicy
	// collect defers fingerprint assignment: buildEntry records slots in
	// serial Assign order instead of calling Assign inline.
	collect bool
	slots   []assignSlot
}

// assignSlot is one pending content-address assignment.
type assignSlot struct {
	entry *Entry
	data  []byte
	// chunk marks a chunk piece; chunked marks a whole-file slot whose
	// content is pooled at chunk granularity instead.
	chunk   bool
	chunked bool
}

func (b *builder) buildEntry(name string, n *vfs.Node) (*Entry, error) {
	e := &Entry{Name: name, Type: n.Type(), Mode: n.Mode()}
	switch n.Type() {
	case vfs.TypeDir:
		for _, childName := range n.ChildNames() {
			child, err := b.buildEntry(childName, n.Child(childName))
			if err != nil {
				return nil, err
			}
			e.Children = append(e.Children, child)
		}
	case vfs.TypeRegular:
		data := n.Content().Data()
		e.Size = int64(len(data))
		pieces := b.pol.split(data)
		chunked := pieces != nil
		if b.collect {
			b.slots = append(b.slots, assignSlot{entry: e, data: data, chunked: chunked})
		} else {
			e.Fingerprint = b.reg.Assign(data)
			if !chunked {
				b.pool[e.Fingerprint] = data
			}
		}
		for _, piece := range pieces {
			if b.collect {
				b.slots = append(b.slots, assignSlot{entry: e, data: piece, chunk: true})
				continue
			}
			cfp := b.reg.Assign(piece)
			e.Chunks = append(e.Chunks, Chunk{Fingerprint: cfp, Size: int64(len(piece))})
			b.pool[cfp] = piece
		}
	case vfs.TypeSymlink:
		e.Target = n.Target()
	default:
		return nil, fmt.Errorf("%w: node type %v at %q", ErrCorrupt, n.Type(), name)
	}
	return e, nil
}

// Validate checks structural invariants: types, sorted unique children,
// well-formed fingerprints.
func (ix *Index) Validate() error {
	if ix.Root == nil || ix.Root.Type != vfs.TypeDir {
		return fmt.Errorf("index %s: root: %w", ix.Reference(), ErrCorrupt)
	}
	return validateEntry(ix.Root, "/")
}

func validateEntry(e *Entry, at string) error {
	switch e.Type {
	case vfs.TypeDir:
		prev := ""
		for i, c := range e.Children {
			if c.Name == "" || strings.ContainsAny(c.Name, "/\x00") {
				return fmt.Errorf("index: bad name %q in %s: %w", c.Name, at, ErrCorrupt)
			}
			if i > 0 && c.Name <= prev {
				return fmt.Errorf("index: unsorted children in %s: %w", at, ErrCorrupt)
			}
			prev = c.Name
			if err := validateEntry(c, at+c.Name+"/"); err != nil {
				return err
			}
		}
	case vfs.TypeRegular:
		if err := e.Fingerprint.Validate(); err != nil {
			return fmt.Errorf("index: %s%s: %w", at, e.Name, err)
		}
		if e.Size < 0 {
			return fmt.Errorf("index: %s%s: negative size: %w", at, e.Name, ErrCorrupt)
		}
		if len(e.Children) > 0 {
			return fmt.Errorf("index: file %s%s has children: %w", at, e.Name, ErrCorrupt)
		}
		if len(e.Chunks) > 0 {
			var sum int64
			for _, c := range e.Chunks {
				if err := c.Fingerprint.Validate(); err != nil {
					return fmt.Errorf("index: %s%s chunk: %w", at, e.Name, err)
				}
				if c.Size <= 0 {
					return fmt.Errorf("index: %s%s: bad chunk size %d: %w", at, e.Name, c.Size, ErrCorrupt)
				}
				sum += c.Size
			}
			if sum != e.Size {
				return fmt.Errorf("index: %s%s: chunk sizes sum %d != size %d: %w",
					at, e.Name, sum, e.Size, ErrCorrupt)
			}
		}
	case vfs.TypeSymlink:
		if len(e.Children) > 0 {
			return fmt.Errorf("index: symlink %s%s has children: %w", at, e.Name, ErrCorrupt)
		}
	default:
		return fmt.Errorf("index: %s%s: bad type %v: %w", at, e.Name, e.Type, ErrCorrupt)
	}
	return nil
}

// Encode renders the index as JSON.
func Encode(ix *Index) ([]byte, error) {
	data, err := json.Marshal(ix)
	if err != nil {
		return nil, fmt.Errorf("index: encode %s: %w", ix.Reference(), err)
	}
	return data, nil
}

// Decode parses and validates index JSON.
func Decode(data []byte) (*Index, error) {
	var ix Index
	if err := json.Unmarshal(data, &ix); err != nil {
		return nil, fmt.Errorf("index: decode: %w: %w", ErrCorrupt, err)
	}
	if err := ix.Validate(); err != nil {
		return nil, err
	}
	return &ix, nil
}

// Placeholder renders the one-line fingerprint record stored in place of
// a regular file: "gearfp:<fingerprint>:<size>\n".
func Placeholder(fp hashing.Fingerprint, size int64) []byte {
	return []byte(PlaceholderPrefix + string(fp) + ":" + strconv.FormatInt(size, 10) + "\n")
}

// ParsePlaceholder inverts Placeholder. It returns ErrNotGearFile for
// content that is not a placeholder record.
func ParsePlaceholder(data []byte) (hashing.Fingerprint, int64, error) {
	s := string(data)
	rest, found := strings.CutPrefix(s, PlaceholderPrefix)
	if !found {
		return "", 0, ErrNotGearFile
	}
	rest = strings.TrimSuffix(rest, "\n")
	rawFP, rawSize, found := strings.Cut(rest, ":")
	if !found {
		return "", 0, fmt.Errorf("placeholder %q: %w", s, ErrCorrupt)
	}
	fp := hashing.Fingerprint(rawFP)
	if err := fp.Validate(); err != nil {
		return "", 0, fmt.Errorf("placeholder: %w", err)
	}
	size, err := strconv.ParseInt(rawSize, 10, 64)
	if err != nil || size < 0 {
		return "", 0, fmt.Errorf("placeholder size %q: %w", rawSize, ErrCorrupt)
	}
	return fp, size, nil
}

// IsPlaceholder reports whether data is a fingerprint placeholder record.
func IsPlaceholder(data []byte) bool {
	_, _, err := ParsePlaceholder(data)
	return err == nil
}

// ToTree materializes the index as a placeholder filesystem: directories
// and symlinks verbatim, regular files replaced by placeholder records.
// This is the read-only "index" directory of the three-level storage
// structure (§III-D1).
func (ix *Index) ToTree() (*vfs.FS, error) {
	f := vfs.New()
	if err := entryToTree(ix.Root, "", f); err != nil {
		return nil, fmt.Errorf("index: to tree %s: %w", ix.Reference(), err)
	}
	return f, nil
}

func entryToTree(e *Entry, at string, f *vfs.FS) error {
	switch e.Type {
	case vfs.TypeDir:
		p := at + "/" + e.Name
		if e.Name == "" {
			p = "/"
		} else if err := f.Mkdir(p, e.Mode); err != nil {
			return err
		}
		for _, c := range e.Children {
			if err := entryToTree(c, strings.TrimSuffix(p, "/"), f); err != nil {
				return err
			}
		}
		return nil
	case vfs.TypeRegular:
		return f.WriteFile(at+"/"+e.Name, Placeholder(e.Fingerprint, e.Size), e.Mode)
	case vfs.TypeSymlink:
		return f.Symlink(e.Target, at+"/"+e.Name)
	default:
		return fmt.Errorf("%w: type %v at %s/%s", ErrCorrupt, e.Type, at, e.Name)
	}
}

// FromTree parses a placeholder filesystem back into an Index tree.
func FromTree(name, tag string, cfg imagefmt.Config, f *vfs.FS) (*Index, error) {
	root, err := treeToEntry("", f.Root())
	if err != nil {
		return nil, fmt.Errorf("index: from tree %s:%s: %w", name, tag, err)
	}
	ix := &Index{Name: name, Tag: tag, Config: cfg, Root: root}
	if err := ix.Validate(); err != nil {
		return nil, err
	}
	return ix, nil
}

func treeToEntry(name string, n *vfs.Node) (*Entry, error) {
	e := &Entry{Name: name, Type: n.Type(), Mode: n.Mode()}
	switch n.Type() {
	case vfs.TypeDir:
		for _, childName := range n.ChildNames() {
			c, err := treeToEntry(childName, n.Child(childName))
			if err != nil {
				return nil, err
			}
			e.Children = append(e.Children, c)
		}
	case vfs.TypeRegular:
		fp, size, err := ParsePlaceholder(n.Content().Data())
		if err != nil {
			return nil, fmt.Errorf("at %q: %w", name, err)
		}
		e.Fingerprint = fp
		e.Size = size
	case vfs.TypeSymlink:
		e.Target = n.Target()
	default:
		return nil, fmt.Errorf("%w: type %v at %q", ErrCorrupt, n.Type(), name)
	}
	return e, nil
}

// FileRef is one unique Gear file referenced by an index.
type FileRef struct {
	Fingerprint hashing.Fingerprint
	Size        int64
}

// Files returns the unique Gear files the index references, sorted by
// fingerprint — the download set for a full materialization.
func (ix *Index) Files() []FileRef {
	seen := make(map[hashing.Fingerprint]int64)
	collectFiles(ix.Root, seen)
	out := make([]FileRef, 0, len(seen))
	for fp, size := range seen {
		out = append(out, FileRef{Fingerprint: fp, Size: size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

func collectFiles(e *Entry, seen map[hashing.Fingerprint]int64) {
	if e.Type == vfs.TypeRegular {
		if len(e.Chunks) > 0 {
			for _, c := range e.Chunks {
				seen[c.Fingerprint] = c.Size
			}
		} else {
			seen[e.Fingerprint] = e.Size
		}
		return
	}
	for _, c := range e.Children {
		collectFiles(c, seen)
	}
}

// ChunkMap returns, for every chunked file, its whole-file fingerprint
// mapped to the chunk list. Drivers use it to resolve a placeholder that
// names a chunked file into its fetchable pieces.
func (ix *Index) ChunkMap() map[hashing.Fingerprint][]Chunk {
	out := make(map[hashing.Fingerprint][]Chunk)
	var walk func(e *Entry)
	walk = func(e *Entry) {
		if e.Type == vfs.TypeRegular && len(e.Chunks) > 0 {
			out[e.Fingerprint] = e.Chunks
		}
		for _, c := range e.Children {
			walk(c)
		}
	}
	walk(ix.Root)
	return out
}

// Lookup resolves a cleaned path to its entry, or nil.
func (ix *Index) Lookup(p string) *Entry {
	parts := vfs.Split(p)
	cur := ix.Root
	for _, part := range parts {
		if cur.Type != vfs.TypeDir {
			return nil
		}
		var next *Entry
		for _, c := range cur.Children {
			if c.Name == part {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

// Stats summarizes an index.
type Stats struct {
	Dirs        int   `json:"dirs"`
	Files       int   `json:"files"` // regular-file entries (not unique)
	UniqueFiles int   `json:"uniqueFiles"`
	Symlinks    int   `json:"symlinks"`
	DataBytes   int64 `json:"dataBytes"` // unique Gear file bytes
	IndexBytes  int64 `json:"indexBytes"`
}

// Stats computes index statistics, including its own encoded size.
func (ix *Index) Stats() (Stats, error) {
	var s Stats
	seen := make(map[hashing.Fingerprint]int64)
	var walk func(e *Entry)
	walk = func(e *Entry) {
		switch e.Type {
		case vfs.TypeDir:
			s.Dirs++
			for _, c := range e.Children {
				walk(c)
			}
		case vfs.TypeRegular:
			s.Files++
			seen[e.Fingerprint] = e.Size
		case vfs.TypeSymlink:
			s.Symlinks++
		}
	}
	walk(ix.Root)
	s.Dirs-- // exclude root
	s.UniqueFiles = len(seen)
	for _, size := range seen {
		s.DataBytes += size
	}
	enc, err := EncodeBinary(ix)
	if err != nil {
		return Stats{}, err
	}
	s.IndexBytes = int64(len(enc))
	return s, nil
}

// ToImage packages the index as a single-layer Docker image so regular
// Docker push/pull moves it (§III-C). The layer carries one file — the
// serialized index at IndexFileName — from which the driver rebuilds the
// placeholder tree on arrival (storing the tree itself in the layer
// would duplicate every path and fingerprint on the wire). The image
// keeps the original configuration and an IndexLabel marker.
func (ix *Index) ToImage() (*imagefmt.Image, error) {
	enc, err := EncodeBinary(ix)
	if err != nil {
		return nil, err
	}
	tree := vfs.New()
	if err := tree.MkdirAll("/.gear", 0o755); err != nil {
		return nil, fmt.Errorf("index: to image: %w", err)
	}
	if err := tree.WriteFile(IndexFileName, enc, 0o444); err != nil {
		return nil, fmt.Errorf("index: to image: %w", err)
	}
	cfg := ix.Config
	labels := make(map[string]string, len(cfg.Labels)+1)
	for k, v := range cfg.Labels {
		labels[k] = v
	}
	labels[IndexLabel] = "v1"
	cfg.Labels = labels
	return imagefmt.SingleLayerImage(ix.Name, ix.Tag, tree, cfg)
}

// FromImage extracts the Index from a single-layer Gear index image.
func FromImage(img *imagefmt.Image) (*Index, error) {
	if img.Manifest.Config.Labels[IndexLabel] == "" {
		return nil, fmt.Errorf("index: image %s is not a gear index: %w",
			img.Manifest.Reference(), ErrNotGearFile)
	}
	root, err := img.Flatten()
	if err != nil {
		return nil, fmt.Errorf("index: from image: %w", err)
	}
	enc, err := root.ReadFile(IndexFileName)
	if err != nil {
		return nil, fmt.Errorf("index: from image: %w: %w", ErrCorrupt, err)
	}
	return DecodeBinary(enc)
}
