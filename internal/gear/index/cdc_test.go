package index

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

func cdcData(t *testing.T, n int, seed int64) []byte {
	t.Helper()
	data := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}

func TestChunkPolicyValidate(t *testing.T) {
	valid := []ChunkPolicy{
		{},
		FixedChunks(4096),
		CDCChunks(4096),
		{MinSize: 1024, AvgSize: 4096, MaxSize: 16384},
		{AvgSize: 1}, // min defaults clamp to 1
	}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", p, err)
		}
	}
	invalid := []ChunkPolicy{
		{FixedSize: -1},
		{AvgSize: -1},
		{MinSize: 512},                                  // bounds without avg
		{MaxSize: 512},                                  // bounds without avg
		{FixedSize: 4096, AvgSize: 4096},                // both modes
		{MinSize: 8192, AvgSize: 4096},                  // min > avg
		{MinSize: 1024, AvgSize: 4096, MaxSize: 2048},   // max < avg
		{MinSize: -1, AvgSize: 4096, MaxSize: 16384},    // negative min
		{MinSize: 1024, AvgSize: 4096, MaxSize: -16384}, // negative max
	}
	for _, p := range invalid {
		if err := p.Validate(); !errors.Is(err, ErrBadChunkPolicy) {
			t.Errorf("Validate(%+v) = %v, want ErrBadChunkPolicy", p, err)
		}
	}
}

// Chunks concatenate back to the input, respect the size bounds, and
// are a pure function of the bytes.
func TestCDCSplitBoundsAndDeterminism(t *testing.T) {
	pol := CDCChunks(1024).normalized()
	for _, n := range []int{0, 1, 100, 4096, 4097, 65536, 200000} {
		data := cdcData(t, n, int64(n))
		pieces := pol.split(data)
		if int64(n) <= pol.MaxSize {
			if pieces != nil {
				t.Fatalf("size %d: split below max produced %d chunks", n, len(pieces))
			}
			continue
		}
		var total int64
		var joined []byte
		for i, p := range pieces {
			size := int64(len(p))
			if size > pol.MaxSize {
				t.Fatalf("size %d: chunk %d is %d > max %d", n, i, size, pol.MaxSize)
			}
			if size < pol.MinSize && i != len(pieces)-1 {
				t.Fatalf("size %d: chunk %d is %d < min %d", n, i, size, pol.MinSize)
			}
			total += size
			joined = append(joined, p...)
		}
		if total != int64(n) || !bytes.Equal(joined, data) {
			t.Fatalf("size %d: chunks do not reassemble the input", n)
		}
		again := pol.split(data)
		if len(again) != len(pieces) {
			t.Fatalf("size %d: split is not deterministic", n)
		}
		for i := range again {
			if !bytes.Equal(again[i], pieces[i]) {
				t.Fatalf("size %d: chunk %d differs across runs", n, i)
			}
		}
	}
}

// The point of CDC: shifting the file by an insertion re-cuts only the
// neighborhood of the edit, so most chunks keep their fingerprints —
// unlike fixed-size chunking, where everything downstream shifts.
func TestCDCSplitShiftResilience(t *testing.T) {
	pol := CDCChunks(1024)
	data := cdcData(t, 256<<10, 99)
	shifted := append([]byte("seventeen bytes!!"), data...)

	key := func(pieces [][]byte) map[string]bool {
		out := make(map[string]bool, len(pieces))
		for _, p := range pieces {
			out[string(p)] = true
		}
		return out
	}
	base := key(pol.split(data))
	shared := 0
	shiftedPieces := pol.split(shifted)
	for _, p := range shiftedPieces {
		if base[string(p)] {
			shared++
		}
	}
	if shared*2 < len(shiftedPieces) {
		t.Fatalf("only %d/%d chunks survive a 17-byte prepend", shared, len(shiftedPieces))
	}

	fixed := FixedChunks(1024)
	fixedBase := key(fixed.split(data))
	fixedShared := 0
	fixedShifted := fixed.split(shifted)
	for _, p := range fixedShifted {
		if fixedBase[string(p)] {
			fixedShared++
		}
	}
	if fixedShared >= shared {
		t.Fatalf("fixed chunking shared %d >= cdc %d after shift", fixedShared, shared)
	}
}

// A single-byte edit invalidates a bounded neighborhood, not the file.
func TestCDCSplitLocalEdit(t *testing.T) {
	pol := CDCChunks(1024)
	data := cdcData(t, 256<<10, 7)
	edited := append([]byte(nil), data...)
	edited[128<<10] ^= 0xff

	base := make(map[string]bool)
	for _, p := range pol.split(data) {
		base[string(p)] = true
	}
	changed := 0
	for _, p := range pol.split(edited) {
		if !base[string(p)] {
			changed++
		}
	}
	if changed > 3 {
		t.Fatalf("a one-byte edit re-cut %d chunks", changed)
	}
}

// BuildPolicy with CDC is bit-identical across worker counts, exactly
// like the fixed-size path.
func TestBuildPolicyCDCParallelParity(t *testing.T) {
	root := vfs.New()
	if err := root.MkdirAll("/data", 0o755); err != nil {
		t.Fatal(err)
	}
	big := cdcData(t, 300<<10, 21)
	if err := root.WriteFile("/data/model.bin", big, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := root.WriteFile("/data/small", []byte("tiny"), 0o644); err != nil {
		t.Fatal(err)
	}
	pol := CDCChunks(4096)
	wantIx, wantPool, err := BuildPolicy("cdc", "v1", imagefmt.Config{}, root, nil, pol, 1)
	if err != nil {
		t.Fatal(err)
	}
	entry := wantIx.Lookup("/data/model.bin")
	if entry == nil || len(entry.Chunks) < 2 {
		t.Fatalf("model not chunked: %+v", entry)
	}
	wantEnc, err := EncodeBinary(wantIx)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		ix, pool, err := BuildPolicy("cdc", "v1", imagefmt.Config{}, root, nil, pol, workers)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := EncodeBinary(ix)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, wantEnc) {
			t.Fatalf("workers=%d: index differs from serial", workers)
		}
		if len(pool) != len(wantPool) {
			t.Fatalf("workers=%d: pool size %d != %d", workers, len(pool), len(wantPool))
		}
		for fp, data := range wantPool {
			if !bytes.Equal(pool[fp], data) {
				t.Fatalf("workers=%d: pool content differs at %s", workers, fp)
			}
		}
	}
}

func TestBuildPolicyRejectsBadPolicy(t *testing.T) {
	root := vfs.New()
	if _, _, err := BuildPolicy("bad", "v1", imagefmt.Config{}, root, nil,
		ChunkPolicy{FixedSize: 1, AvgSize: 1}, 1); !errors.Is(err, ErrBadChunkPolicy) {
		t.Fatalf("err = %v, want ErrBadChunkPolicy", err)
	}
}

// goldenCDCIndex builds the deterministic CDC fixture pinned by
// testdata/golden_cdc_index.bin: chunk boundaries (and therefore the
// gearTable and mask arithmetic) are part of the on-disk format.
func goldenCDCIndex(t *testing.T) *Index {
	t.Helper()
	fs := vfs.New()
	if err := fs.MkdirAll("/srv", 0o755); err != nil {
		t.Fatal(err)
	}
	big := cdcData(t, 100000, 11)
	if err := fs.WriteFile("/srv/model.bin", big, 0o644); err != nil {
		t.Fatal(err)
	}
	// A shared region: the tail of model.bin under another name must
	// dedup at chunk granularity.
	if err := fs.WriteFile("/srv/model2.bin", append(cdcData(t, 3000, 12), big[20000:]...), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/srv/app", []byte("#!/bin/app\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	ix, pool, err := BuildPolicy("golden-cdc", "v1", imagefmt.Config{Env: []string{"M=cdc"}},
		fs, nil, ChunkPolicy{MinSize: 1024, AvgSize: 4096, MaxSize: 16384}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Chunk-level sharing must actually occur in the fixture.
	m1, m2 := ix.Lookup("/srv/model.bin"), ix.Lookup("/srv/model2.bin")
	seen := make(map[string]bool, len(m1.Chunks))
	for _, c := range m1.Chunks {
		seen[string(c.Fingerprint)] = true
	}
	shared := 0
	for _, c := range m2.Chunks {
		if seen[string(c.Fingerprint)] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("golden fixture has no cross-file shared chunks")
	}
	if len(pool) >= len(m1.Chunks)+len(m2.Chunks)+2 {
		t.Fatalf("pool %d entries shows no chunk dedup", len(pool))
	}
	return ix
}

// TestCDCGolden pins the CDC chunk table bytes: boundaries, chunk
// fingerprints, and the codec's rendering of them must never drift.
func TestCDCGolden(t *testing.T) {
	ix := goldenCDCIndex(t)
	bin, err := EncodeBinary(ix)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_cdc_index.bin", bin)
	back, err := DecodeBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	bin2, err := EncodeBinary(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bin, bin2) {
		t.Fatal("cdc binary round trip is not idempotent")
	}
}

func BenchmarkCDCSplit(b *testing.B) {
	data := make([]byte, 4<<20)
	rand.New(rand.NewSource(1)).Read(data)
	pol := ChunkPolicy{MinSize: 32 << 10, AvgSize: 128 << 10, MaxSize: 512 << 10}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if pieces := pol.split(data); len(pieces) < 2 {
			b.Fatal("no split")
		}
	}
}
