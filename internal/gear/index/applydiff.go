package index

import (
	"fmt"
	"io/fs"
	"path"
	"sort"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/tarstream"
	"github.com/gear-image/gear/internal/vfs"
)

// ApplyDiff implements the metadata half of the Gear commit path
// (§III-D2): it merges a container's writable-layer diff tree (with
// literal whiteout entries) into ix, producing the new image's index
// under newName:newTag. Regular files appearing in the diff become new
// Gear files: they are fingerprinted through reg and returned in
// newFiles for upload to the Gear Registry.
func ApplyDiff(ix *Index, newName, newTag string, diff *vfs.FS, reg *hashing.Registry) (*Index, map[hashing.Fingerprint][]byte, error) {
	if reg == nil {
		reg = hashing.NewRegistry(nil)
	}
	root := toMutable(ix.Root)
	newFiles := make(map[hashing.Fingerprint][]byte)

	// Pass 1: opaque clears (must precede sibling application; see
	// tarstream.ApplyLayer for the ordering rationale).
	err := diff.Walk(func(p string, n *vfs.Node) error {
		switch {
		case path.Base(p) == tarstream.OpaqueMarker:
			if dir := lookupMutable(root, path.Dir(p)); dir != nil {
				dir.children = make(map[string]*mutableEntry)
			}
		case n.IsDir() && n.Opaque:
			if dir := lookupMutable(root, p); dir != nil {
				dir.children = make(map[string]*mutableEntry)
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("index: apply diff: %w", err)
	}

	// Pass 2: whiteouts, additions, replacements.
	err = diff.Walk(func(p string, n *vfs.Node) error {
		name := path.Base(p)
		if name == tarstream.OpaqueMarker {
			return nil
		}
		if hidden, ok := tarstream.IsWhiteout(name); ok {
			if dir := lookupMutable(root, path.Dir(p)); dir != nil {
				delete(dir.children, hidden)
			}
			return nil
		}
		parent := mkdirMutable(root, path.Dir(p))
		switch n.Type() {
		case vfs.TypeDir:
			existing := parent.children[name]
			if existing == nil || existing.typ != vfs.TypeDir {
				parent.children[name] = &mutableEntry{
					typ:      vfs.TypeDir,
					mode:     n.Mode(),
					children: make(map[string]*mutableEntry),
				}
			} else {
				existing.mode = n.Mode()
			}
		case vfs.TypeRegular:
			data := n.Content().Data()
			fp := reg.Assign(data)
			newFiles[fp] = data
			parent.children[name] = &mutableEntry{
				typ:  vfs.TypeRegular,
				mode: n.Mode(),
				fp:   fp,
				size: int64(len(data)),
			}
		case vfs.TypeSymlink:
			parent.children[name] = &mutableEntry{
				typ:    vfs.TypeSymlink,
				mode:   n.Mode(),
				target: n.Target(),
			}
		default:
			return fmt.Errorf("%w: diff node type %v at %s", ErrCorrupt, n.Type(), p)
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("index: apply diff: %w", err)
	}

	out := &Index{Name: newName, Tag: newTag, Config: ix.Config, Root: fromMutable("", root)}
	if err := out.Validate(); err != nil {
		return nil, nil, err
	}
	return out, newFiles, nil
}

// mutableEntry mirrors Entry with map-based children for editing.
type mutableEntry struct {
	typ      vfs.FileType
	mode     fs.FileMode
	target   string
	fp       hashing.Fingerprint
	size     int64
	chunks   []Chunk
	children map[string]*mutableEntry
}

func toMutable(e *Entry) *mutableEntry {
	m := &mutableEntry{
		typ:    e.Type,
		mode:   e.Mode,
		target: e.Target,
		fp:     e.Fingerprint,
		size:   e.Size,
		chunks: e.Chunks,
	}
	if e.Type == vfs.TypeDir {
		m.children = make(map[string]*mutableEntry, len(e.Children))
		for _, c := range e.Children {
			m.children[c.Name] = toMutable(c)
		}
	}
	return m
}

func fromMutable(name string, m *mutableEntry) *Entry {
	e := &Entry{
		Name:        name,
		Type:        m.typ,
		Mode:        m.mode,
		Target:      m.target,
		Fingerprint: m.fp,
		Size:        m.size,
		Chunks:      m.chunks,
	}
	if m.typ == vfs.TypeDir {
		names := make([]string, 0, len(m.children))
		for n := range m.children {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			e.Children = append(e.Children, fromMutable(n, m.children[n]))
		}
	}
	return e
}

func lookupMutable(root *mutableEntry, p string) *mutableEntry {
	cur := root
	for _, part := range vfs.Split(p) {
		if cur.typ != vfs.TypeDir {
			return nil
		}
		next := cur.children[part]
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

// mkdirMutable walks to p creating directories as needed (overwriting
// non-directories, as tar extraction does).
func mkdirMutable(root *mutableEntry, p string) *mutableEntry {
	cur := root
	for _, part := range vfs.Split(p) {
		next := cur.children[part]
		if next == nil || next.typ != vfs.TypeDir {
			next = &mutableEntry{
				typ:      vfs.TypeDir,
				mode:     0o755,
				children: make(map[string]*mutableEntry),
			}
			cur.children[part] = next
		}
		cur = next
	}
	return cur
}
