package index

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

// The golden files pin the codec's exact output bytes: optimizations to
// Encode/EncodeBinary must stay bit-identical to the committed form,
// because index bytes feed layer digests and therefore image identity.
// Regenerate (only for a deliberate, versioned format change) with:
//
//	go test ./internal/gear/index -run TestCodecGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden codec files")

// goldenIndex builds a deterministic index exercising every entry shape:
// nested directories, duplicated regular files, symlinks, a chunked big
// file, varied modes, and a config with env/entrypoint/labels.
func goldenIndex(t *testing.T) *Index {
	t.Helper()
	fs := vfs.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(fs.MkdirAll("/etc/app/conf.d", 0o755))
	must(fs.MkdirAll("/usr/lib", 0o755))
	must(fs.MkdirAll("/var/empty", 0o700))
	rng := rand.New(rand.NewSource(7))
	big := make([]byte, 10000)
	rng.Read(big)
	must(fs.WriteFile("/usr/lib/libbig.so", big, 0o644))
	for i := 0; i < 8; i++ {
		data := []byte(fmt.Sprintf("config file %d contents\n", i%5)) // dups
		must(fs.WriteFile(fmt.Sprintf("/etc/app/conf.d/%02d.conf", i), data, 0o640))
	}
	must(fs.WriteFile("/etc/app/app.bin", append([]byte{0, 1, 2}, big[:500]...), 0o755))
	must(fs.Symlink("/etc/app/app.bin", "/usr/lib/app"))
	must(fs.Symlink("../app.bin", "/etc/app/conf.d/link"))

	cfg := imagefmt.Config{
		Env:        []string{"PATH=/usr/bin", "MODE=golden"},
		Entrypoint: []string{"/etc/app/app.bin"},
		Labels:     map[string]string{"io.test": "golden"},
	}
	ix, _, err := BuildChunked("golden", "v1", cfg, fs, nil, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("%s: output diverges from golden at byte %d (got %d bytes, want %d)",
			name, i, len(got), len(want))
	}
}

// TestCodecGolden pins both codecs' bytes against the committed
// pre-optimization golden files.
func TestCodecGolden(t *testing.T) {
	ix := goldenIndex(t)

	bin, err := EncodeBinary(ix)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_index.bin", bin)

	js, err := Encode(ix)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_index.json", js)

	// Both forms must round-trip to the same tree they encoded.
	back, err := DecodeBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	bin2, err := EncodeBinary(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bin, bin2) {
		t.Fatal("binary round trip is not idempotent")
	}
	jsBack, err := Decode(js)
	if err != nil {
		t.Fatal(err)
	}
	js2, err := Encode(jsBack)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js, js2) {
		t.Fatal("JSON round trip is not idempotent")
	}
}
