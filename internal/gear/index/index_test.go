package index

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path"
	"strings"
	"testing"
	"testing/quick"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/vfs"
)

func fixtureRoot(t *testing.T) *vfs.FS {
	t.Helper()
	f := vfs.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.MkdirAll("/etc/nginx", 0o755))
	must(f.MkdirAll("/usr/bin", 0o755))
	must(f.WriteFile("/etc/nginx/nginx.conf", []byte("conf-data"), 0o644))
	must(f.WriteFile("/usr/bin/nginx", bytes.Repeat([]byte{0xab}, 4096), 0o755))
	// Duplicate content under a different path — must share a fingerprint.
	must(f.WriteFile("/etc/nginx/nginx.conf.bak", []byte("conf-data"), 0o644))
	must(f.Symlink("nginx", "/usr/bin/nginx-latest"))
	return f
}

func buildFixture(t *testing.T) (*Index, map[hashing.Fingerprint][]byte) {
	t.Helper()
	cfg := imagefmt.Config{Env: []string{"PATH=/usr/bin"}, Entrypoint: []string{"/usr/bin/nginx"}}
	ix, pool, err := Build("nginx", "1.17", cfg, fixtureRoot(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	return ix, pool
}

func TestBuildDeduplicatesPool(t *testing.T) {
	ix, pool := buildFixture(t)
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 regular files but only 2 unique contents.
	if len(pool) != 2 {
		t.Errorf("pool size = %d, want 2", len(pool))
	}
	s, err := ix.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Files != 3 || s.UniqueFiles != 2 || s.Symlinks != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.DataBytes != int64(len("conf-data"))+4096 {
		t.Errorf("data bytes = %d", s.DataBytes)
	}
	if s.IndexBytes <= 0 || s.IndexBytes > 4096 {
		t.Errorf("index bytes = %d; the index must be tiny", s.IndexBytes)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ix, _ := buildFixture(t)
	data, err := Encode(ix)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reference() != "nginx:1.17" {
		t.Errorf("reference = %q", got.Reference())
	}
	a, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, data) {
		t.Error("encode(decode(x)) != x")
	}
	if _, err := Decode([]byte("{broken")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("decode garbage err = %v", err)
	}
}

func TestDecodeRejectsInvalidStructures(t *testing.T) {
	tests := []struct {
		name string
		json string
	}{
		{"nil root", `{"name":"a","tag":"b"}`},
		{"root not dir", `{"name":"a","tag":"b","root":{"name":"","type":1}}`},
		{"bad fingerprint", `{"name":"a","tag":"b","root":{"name":"","type":2,"children":[
			{"name":"f","type":1,"fingerprint":"xyz"}]}}`},
		{"unsorted children", `{"name":"a","tag":"b","root":{"name":"","type":2,"children":[
			{"name":"b","type":2},{"name":"a","type":2}]}}`},
		{"dup children", `{"name":"a","tag":"b","root":{"name":"","type":2,"children":[
			{"name":"a","type":2},{"name":"a","type":2}]}}`},
		{"slash in name", `{"name":"a","tag":"b","root":{"name":"","type":2,"children":[
			{"name":"a/b","type":2}]}}`},
		{"file with children", `{"name":"a","tag":"b","root":{"name":"","type":2,"children":[
			{"name":"f","type":1,"fingerprint":"d41d8cd98f00b204e9800998ecf8427e","children":[{"name":"x","type":2}]}]}}`},
		{"negative size", `{"name":"a","tag":"b","root":{"name":"","type":2,"children":[
			{"name":"f","type":1,"fingerprint":"d41d8cd98f00b204e9800998ecf8427e","size":-1}]}}`},
		{"bad type", `{"name":"a","tag":"b","root":{"name":"","type":2,"children":[
			{"name":"f","type":9}]}}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode([]byte(tt.json)); err == nil {
				t.Error("invalid index accepted")
			}
		})
	}
}

func TestPlaceholderRoundTrip(t *testing.T) {
	fp := hashing.FingerprintBytes([]byte("data"))
	rec := Placeholder(fp, 12345)
	gotFP, gotSize, err := ParsePlaceholder(rec)
	if err != nil || gotFP != fp || gotSize != 12345 {
		t.Errorf("ParsePlaceholder = %s, %d, %v", gotFP, gotSize, err)
	}
	if !IsPlaceholder(rec) {
		t.Error("IsPlaceholder(valid) = false")
	}
	bad := [][]byte{
		[]byte("regular file content"),
		[]byte("gearfp:short:1\n"),
		[]byte("gearfp:" + string(fp) + "\n"),     // missing size
		[]byte("gearfp:" + string(fp) + ":-5\n"),  // negative size
		[]byte("gearfp:" + string(fp) + ":abc\n"), // junk size
		{},
	}
	for _, b := range bad {
		if IsPlaceholder(b) {
			t.Errorf("IsPlaceholder(%q) = true", b)
		}
	}
	if _, _, err := ParsePlaceholder([]byte("not a placeholder")); !errors.Is(err, ErrNotGearFile) {
		t.Errorf("err = %v, want ErrNotGearFile", err)
	}
}

func TestToTreeAndFromTree(t *testing.T) {
	ix, _ := buildFixture(t)
	tree, err := ix.ToTree()
	if err != nil {
		t.Fatal(err)
	}
	// Placeholders stand in for regular files.
	data, err := tree.ReadFile("/etc/nginx/nginx.conf")
	if err != nil {
		t.Fatal(err)
	}
	fp, size, err := ParsePlaceholder(data)
	if err != nil || size != int64(len("conf-data")) {
		t.Errorf("placeholder = %s, %d, %v", fp, size, err)
	}
	if fp != hashing.FingerprintBytes([]byte("conf-data")) {
		t.Error("placeholder fingerprint mismatch")
	}
	// Symlinks and dirs carry over.
	n, err := tree.Stat("/usr/bin/nginx-latest")
	if err != nil || n.Type() != vfs.TypeSymlink || n.Target() != "nginx" {
		t.Errorf("symlink = %v, %v", n, err)
	}
	// Round trip back to an index.
	got, err := FromTree("nginx", "1.17", ix.Config, tree)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Encode(ix)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("FromTree(ToTree(ix)) != ix")
	}
}

func TestFromTreeRejectsNonPlaceholder(t *testing.T) {
	f := vfs.New()
	if err := f.WriteFile("/real-file", []byte("actual content"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FromTree("a", "b", imagefmt.Config{}, f); !errors.Is(err, ErrNotGearFile) {
		t.Errorf("err = %v, want ErrNotGearFile", err)
	}
}

func TestFiles(t *testing.T) {
	ix, pool := buildFixture(t)
	refs := ix.Files()
	if len(refs) != 2 {
		t.Fatalf("files = %d, want 2 unique", len(refs))
	}
	for i := 1; i < len(refs); i++ {
		if refs[i-1].Fingerprint >= refs[i].Fingerprint {
			t.Error("files not sorted")
		}
	}
	for _, ref := range refs {
		data, ok := pool[ref.Fingerprint]
		if !ok {
			t.Errorf("pool missing %s", ref.Fingerprint)
			continue
		}
		if int64(len(data)) != ref.Size {
			t.Errorf("size mismatch for %s: %d vs %d", ref.Fingerprint, len(data), ref.Size)
		}
	}
}

func TestLookup(t *testing.T) {
	ix, _ := buildFixture(t)
	tests := []struct {
		p    string
		want vfs.FileType
	}{
		{"/", vfs.TypeDir},
		{"/etc", vfs.TypeDir},
		{"/etc/nginx/nginx.conf", vfs.TypeRegular},
		{"/usr/bin/nginx-latest", vfs.TypeSymlink},
	}
	for _, tt := range tests {
		e := ix.Lookup(tt.p)
		if e == nil || e.Type != tt.want {
			t.Errorf("Lookup(%s) = %+v, want type %v", tt.p, e, tt.want)
		}
	}
	for _, p := range []string{"/missing", "/etc/nginx/nginx.conf/below", "/etc/ghost/x"} {
		if e := ix.Lookup(p); e != nil {
			t.Errorf("Lookup(%s) = %+v, want nil", p, e)
		}
	}
}

func TestToImageFromImage(t *testing.T) {
	ix, _ := buildFixture(t)
	img, err := ix.ToImage()
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Layers) != 1 {
		t.Fatalf("gear index image has %d layers, want 1", len(img.Layers))
	}
	if img.Manifest.Config.Labels[IndexLabel] == "" {
		t.Error("index label missing")
	}
	// The config must carry over so applications execute properly (§III-C).
	if len(img.Manifest.Config.Env) != 1 || img.Manifest.Config.Env[0] != "PATH=/usr/bin" {
		t.Error("environment not copied into index image")
	}
	got, err := FromImage(img)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Encode(ix)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("FromImage(ToImage(ix)) != ix")
	}
}

func TestFromImageRejectsRegularImage(t *testing.T) {
	f := vfs.New()
	if err := f.WriteFile("/app", []byte("x"), 0o755); err != nil {
		t.Fatal(err)
	}
	img, err := imagefmt.SingleLayerImage("plain", "v1", f, imagefmt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromImage(img); !errors.Is(err, ErrNotGearFile) {
		t.Errorf("err = %v, want ErrNotGearFile", err)
	}
}

func TestIndexIsTinyRelativeToImage(t *testing.T) {
	// The paper: indexes average ~0.53 MB, ~1.1% of image bytes. Build a
	// tree with many moderately sized files and check the ratio is small.
	f := vfs.New()
	rng := rand.New(rand.NewSource(42))
	if err := f.MkdirAll("/data", 0o755); err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < 200; i++ {
		data := make([]byte, 8192+rng.Intn(8192))
		rng.Read(data)
		total += int64(len(data))
		if err := f.WriteFile(fmt.Sprintf("/data/f%03d", i), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ix, _, err := Build("big", "v1", imagefmt.Config{}, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ix.Stats()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(s.IndexBytes) / float64(total)
	if ratio > 0.05 {
		t.Errorf("index is %.1f%% of data bytes; want < 5%%", ratio*100)
	}
}

func TestCollisionSafety(t *testing.T) {
	// Under a colliding hasher, two different contents must still resolve
	// to different Gear files through the index (§III-B fallback).
	reg := hashing.NewRegistry(collidingHasher{})
	f := vfs.New()
	if err := f.WriteFile("/a", []byte("content-A"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("/b", []byte("content-B"), 0o644); err != nil {
		t.Fatal(err)
	}
	ix, pool, err := Build("col", "v1", imagefmt.Config{}, f, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	ea, eb := ix.Lookup("/a"), ix.Lookup("/b")
	if ea.Fingerprint == eb.Fingerprint {
		t.Fatal("colliding contents share a fingerprint")
	}
	if string(pool[ea.Fingerprint]) != "content-A" || string(pool[eb.Fingerprint]) != "content-B" {
		t.Error("pool contents scrambled by collision")
	}
	if reg.Collisions() != 1 {
		t.Errorf("collisions = %d, want 1", reg.Collisions())
	}
}

type collidingHasher struct{}

func (collidingHasher) Fingerprint([]byte) hashing.Fingerprint {
	return hashing.Fingerprint(strings.Repeat("f", 32))
}

// randomRoot builds a random image-like tree.
func randomRoot(rng *rand.Rand, n int) *vfs.FS {
	f := vfs.New()
	dirs := []string{"/"}
	for i := 0; i < n; i++ {
		d := dirs[rng.Intn(len(dirs))]
		name := fmt.Sprintf("n%02d", i)
		p := path.Join(d, name)
		switch rng.Intn(4) {
		case 0:
			if f.Mkdir(p, 0o755) == nil {
				dirs = append(dirs, p)
			}
		case 1:
			_ = f.Symlink("/bin/sh", p)
		default:
			data := make([]byte, rng.Intn(256))
			rng.Read(data)
			_ = f.WriteFile(p, data, 0o644)
		}
	}
	return f
}

// Property: Build -> ToTree -> FromTree -> Encode is a fixed point, and
// materializing every placeholder from the pool reconstructs the original
// tree byte-for-byte.
func TestBuildMaterializeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := randomRoot(rng, 50)
		ix, pool, err := Build("p", "v", imagefmt.Config{}, root, nil)
		if err != nil {
			return false
		}
		if ix.Validate() != nil {
			return false
		}
		tree, err := ix.ToTree()
		if err != nil {
			return false
		}
		// Materialize: replace placeholders with pool contents.
		reconstructed := vfs.New()
		err = tree.Walk(func(p string, n *vfs.Node) error {
			switch n.Type() {
			case vfs.TypeDir:
				return reconstructed.MkdirAll(p, n.Mode())
			case vfs.TypeSymlink:
				return reconstructed.Symlink(n.Target(), p)
			case vfs.TypeRegular:
				fp, _, err := ParsePlaceholder(n.Content().Data())
				if err != nil {
					return err
				}
				data, ok := pool[fp]
				if !ok {
					return errors.New("pool miss")
				}
				return reconstructed.WriteFile(p, data, n.Mode())
			}
			return nil
		})
		if err != nil {
			return false
		}
		return treeSnapshot(root) == treeSnapshot(reconstructed)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func treeSnapshot(f *vfs.FS) string {
	var sb strings.Builder
	_ = f.Walk(func(p string, n *vfs.Node) error {
		var body string
		if n.Type() == vfs.TypeRegular {
			body = string(n.Content().Data())
		}
		fmt.Fprintf(&sb, "%s|%v|%o|%s|%q\n", p, n.Type(), n.Mode(), n.Target(), body)
		return nil
	})
	return sb.String()
}

// Property: the set of fingerprints in Files() equals the pool keys.
func TestFilesMatchesPoolProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := randomRoot(rng, 40)
		ix, pool, err := Build("p", "v", imagefmt.Config{}, root, nil)
		if err != nil {
			return false
		}
		refs := ix.Files()
		if len(refs) != len(pool) {
			return false
		}
		for _, ref := range refs {
			data, ok := pool[ref.Fingerprint]
			if !ok || int64(len(data)) != ref.Size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	ix, _ := buildFixture(t)
	bin, err := EncodeBinary(ix)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Encode(ix)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("binary round trip lost information")
	}
	// The binary form is substantially smaller than JSON.
	if len(bin) >= len(a) {
		t.Errorf("binary %d B not smaller than JSON %d B", len(bin), len(a))
	}
}

func TestBinaryCodecChunksAndCollisionIDs(t *testing.T) {
	big := make([]byte, 10000)
	rand.New(rand.NewSource(4)).Read(big)
	root := vfs.New()
	if err := root.WriteFile("/model", big, 0o644); err != nil {
		t.Fatal(err)
	}
	ix, _, err := BuildChunked("ai", "v1", imagefmt.Config{Env: []string{"A=1"}}, root, nil, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Force a collision-fallback fingerprint into the tree.
	ix.Root.Children[0].Fingerprint += "-c1"
	bin, err := EncodeBinary(ix)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	e := got.Lookup("/model")
	if e == nil || len(e.Chunks) != 3 || !strings.HasSuffix(string(e.Fingerprint), "-c1") {
		t.Errorf("entry = %+v", e)
	}
	if len(got.Config.Env) != 1 {
		t.Error("config lost")
	}
}

func TestBinaryCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("GIX"),
		[]byte("JUNKJUNKJUNK"),
		append([]byte("GIX1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
	}
	for _, c := range cases {
		if _, err := DecodeBinary(c); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
	// Trailing bytes rejected.
	ix, _ := buildFixture(t)
	bin, err := EncodeBinary(ix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBinary(append(bin, 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// BuildChunkedParallel must be bit-identical to BuildChunked for any
// worker count — same tree, same fingerprints (including collision IDs),
// same pool — under both the real hasher and a colliding one.
func TestBuildChunkedParallelMatchesSerial(t *testing.T) {
	cfg := imagefmt.Config{Env: []string{"A=1"}}
	for _, tc := range []struct {
		name   string
		hasher hashing.Hasher
	}{
		{"md5", nil},
		{"colliding", collidingHasher{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			root := randomRoot(rng, 80)
			// Small chunk size so several files chunk.
			const chunkSize = 64
			serialReg := hashing.NewRegistry(tc.hasher)
			wantIx, wantPool, err := BuildChunked("app", "v1", cfg, root, serialReg, chunkSize)
			if err != nil {
				t.Fatal(err)
			}
			wantEnc, err := Encode(wantIx)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				reg := hashing.NewRegistry(tc.hasher)
				ix, pool, err := BuildChunkedParallel("app", "v1", cfg, root, reg, chunkSize, workers)
				if err != nil {
					t.Fatal(err)
				}
				enc, err := Encode(ix)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(enc, wantEnc) {
					t.Fatalf("workers=%d: index differs from serial build", workers)
				}
				if len(pool) != len(wantPool) {
					t.Fatalf("workers=%d: pool size %d, want %d", workers, len(pool), len(wantPool))
				}
				for fp, data := range wantPool {
					if !bytes.Equal(pool[fp], data) {
						t.Fatalf("workers=%d: pool content differs at %s", workers, fp)
					}
				}
				if reg.Collisions() != serialReg.Collisions() {
					t.Fatalf("workers=%d: collisions = %d, want %d",
						workers, reg.Collisions(), serialReg.Collisions())
				}
			}
		})
	}
}
