// Package convert implements the Gear Converter (§III-B, §IV of the
// paper): it turns a regular Docker image into a Gear image — a tiny Gear
// index packaged as a single-layer Docker image, plus a pool of
// content-addressed Gear files.
//
// The conversion pipeline follows the paper exactly: fetch the manifest,
// decompress and apply the layers bottom-up to reconstruct the root
// filesystem, traverse the tree building the index and extracting Gear
// files, then build the index image. A disksim-backed timing model
// reports where the time goes, reproducing the shape of Fig 6 (conversion
// time proportional to image size, dominated by small-file traversal, and
// much faster on SSD).
package convert

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/gear-image/gear/internal/disksim"
	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/registry"
	"github.com/gear-image/gear/internal/tarstream"
	"github.com/gear-image/gear/internal/vfs"
)

// ErrAlreadyConverted reports a second conversion of the same reference;
// the paper notes conversion "is performed only once" per image.
var ErrAlreadyConverted = errors.New("image already converted")

// Timing breaks down where conversion time goes on the modeled disk.
type Timing struct {
	// Unpack covers reading and decompressing layer tarballs and writing
	// the reconstructed filesystem.
	Unpack time.Duration `json:"unpack"`
	// Traverse covers walking the reconstructed tree and reading every
	// regular file to fingerprint it.
	Traverse time.Duration `json:"traverse"`
	// Build covers writing Gear files into the pool and building the
	// single-layer index image.
	Build time.Duration `json:"build"`
}

// Total returns the end-to-end modeled conversion time.
func (t Timing) Total() time.Duration { return t.Unpack + t.Traverse + t.Build }

// Result is one converted image.
type Result struct {
	// Index is the Gear index.
	Index *index.Index
	// Files maps every fingerprint referenced by the index to its
	// content — the image's complete Gear file set before dedup against
	// any registry.
	Files map[hashing.Fingerprint][]byte
	// IndexImage is the index packaged as a single-layer Docker image.
	IndexImage *imagefmt.Image
	// Timing is the modeled conversion cost.
	Timing Timing
}

// Options configures a Converter.
type Options struct {
	// Disk models conversion I/O cost. Defaults to disksim.HDD(), the
	// paper's testbed disk.
	Disk disksim.Config
	// PerFileCPU models the device-independent per-file processing cost
	// (the paper converts through the Docker API, which dominates once
	// seeks are gone — it is why the SSD speedup saturates at ~66%
	// instead of the raw seek ratio). Defaults to 8ms.
	PerFileCPU time.Duration
	// HashBPS models fingerprinting throughput. Defaults to 200 MB/s.
	HashBPS float64
	// ChunkSize > 0 enables the big-file extension: files larger than
	// this are split into ChunkSize pieces (§VII future work).
	ChunkSize int64
	// Chunking is the general chunk policy — set it for content-defined
	// chunking (index.CDCChunks) instead of the fixed-size ChunkSize.
	// Setting both is an error.
	Chunking index.ChunkPolicy
	// IndexName optionally renames the converted image; empty keeps the
	// original name (the paper stores the Gear index under the original
	// reference once the regular image is removed).
	IndexName string
	// Workers bounds the fingerprint/extract worker pool. Disk costs stay
	// serial (one modeled spindle), but the CPU-bound costs — hashing and
	// the per-file conversion work — divide across workers. Fingerprints
	// and pool contents are bit-identical for any worker count (see
	// index.BuildChunkedParallel); workers <= 1 is the serial baseline.
	Workers int
}

// Converter converts Docker images to Gear images. Fingerprint
// assignment is shared across conversions so collisions are detected
// globally. Converter is safe for concurrent use: conversions serialize
// on an internal lock, matching the paper's converter, which runs in
// the registry as a single sequential service.
type Converter struct {
	opts Options

	mu   sync.Mutex
	reg  *hashing.Registry
	disk *disksim.Disk
	done map[string]*Result // references already converted -> cached result
}

// New returns a Converter.
func New(opts Options) (*Converter, error) {
	if opts.Disk == (disksim.Config{}) {
		opts.Disk = disksim.HDD()
	}
	if opts.PerFileCPU == 0 {
		opts.PerFileCPU = 8 * time.Millisecond
	}
	if opts.HashBPS == 0 {
		opts.HashBPS = 200e6
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.ChunkSize > 0 && opts.Chunking.Enabled() {
		return nil, fmt.Errorf("convert: both ChunkSize and Chunking set: %w", index.ErrBadChunkPolicy)
	}
	if opts.ChunkSize > 0 {
		opts.Chunking = index.FixedChunks(opts.ChunkSize)
	}
	if err := opts.Chunking.Validate(); err != nil {
		return nil, fmt.Errorf("convert: %w", err)
	}
	disk, err := disksim.New(opts.Disk)
	if err != nil {
		return nil, fmt.Errorf("convert: %w", err)
	}
	return &Converter{
		opts: opts,
		reg:  hashing.NewRegistry(nil),
		disk: disk,
		done: make(map[string]*Result),
	}, nil
}

// Convert turns img into a Gear image. Each reference converts once;
// converting it again returns the cached Result alongside
// ErrAlreadyConverted, so callers can push an already-converted image
// without paying for a reconversion.
func (c *Converter) Convert(img *imagefmt.Image) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ref := img.Manifest.Reference()
	if cached := c.done[ref]; cached != nil {
		return cached, fmt.Errorf("convert %s: %w", ref, ErrAlreadyConverted)
	}
	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("convert %s: %w", ref, err)
	}

	var timing Timing

	// Phase 1: decompress and apply layers bottom-up (§III-B: "the
	// converter decompresses and then saves the layers starting from the
	// bottom layer to the top layer").
	root := vfs.New()
	for i, layer := range img.Layers {
		timing.Unpack += c.disk.Read(layer.Size)
		tree, err := layer.Tree()
		if err != nil {
			return nil, fmt.Errorf("convert %s layer %d: %w", ref, i, err)
		}
		if err := applyTree(root, tree); err != nil {
			return nil, fmt.Errorf("convert %s layer %d: %w", ref, i, err)
		}
		timing.Unpack += c.disk.Write(layer.UncompressedSize)
	}

	// Phase 2: traverse the reconstructed filesystem; every regular file
	// is read once to fingerprint it. Small files make this seek-bound,
	// which is why Fig 6's time grows with file count. The disk is one
	// spindle, so reads stay serial; the hash CPU fans out over the
	// worker pool.
	workers := c.opts.Workers
	var hashCPU time.Duration
	err := root.Walk(func(_ string, n *vfs.Node) error {
		if n.Type() == vfs.TypeRegular {
			timing.Traverse += c.disk.Read(n.Size())
			hashCPU += time.Duration(float64(n.Size()) / c.opts.HashBPS * float64(time.Second))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("convert %s: %w", ref, err)
	}
	timing.Traverse += hashCPU / time.Duration(workers)

	name := img.Manifest.Name
	if c.opts.IndexName != "" {
		name = c.opts.IndexName
	}
	ix, pool, err := index.BuildPolicy(name, img.Manifest.Tag, img.Manifest.Config,
		root, c.reg, c.opts.Chunking, workers)
	if err != nil {
		return nil, fmt.Errorf("convert %s: %w", ref, err)
	}

	// Phase 3: write Gear files and build the single-layer index image.
	// Each file pays the device write plus the device-independent
	// conversion CPU (Docker API calls, metadata bookkeeping); the CPU
	// share divides across the worker pool.
	var buildCPU time.Duration
	for _, data := range pool {
		timing.Build += c.disk.Write(int64(len(data)))
		buildCPU += c.opts.PerFileCPU
	}
	timing.Build += buildCPU / time.Duration(workers)
	indexImage, err := ix.ToImage()
	if err != nil {
		return nil, fmt.Errorf("convert %s: %w", ref, err)
	}
	timing.Build += c.disk.Write(indexImage.Manifest.TotalSize())

	res := &Result{Index: ix, Files: pool, IndexImage: indexImage, Timing: timing}
	c.done[ref] = res
	return res, nil
}

// applyTree merges a layer tree into root, resolving whiteouts.
func applyTree(root, layer *vfs.FS) error {
	return tarstream.ApplyLayer(root, layer)
}

// Publish stores a conversion result: the index image goes to the Docker
// registry, Gear files go to the Gear registry, skipping files the Gear
// registry already holds (fingerprint query before upload, §III-C). It
// returns the bytes actually uploaded to each store.
func Publish(res *Result, docker registry.Store, gear gearregistry.Store) (indexBytes, fileBytes int64, err error) {
	indexBytes, err = registry.Push(docker, res.IndexImage)
	if err != nil {
		return 0, 0, fmt.Errorf("convert: publish index: %w", err)
	}
	for fp, data := range res.Files {
		present, err := gear.Query(fp)
		if err != nil {
			return indexBytes, fileBytes, fmt.Errorf("convert: publish query %s: %w", fp, err)
		}
		if present {
			continue
		}
		if err := gear.Upload(fp, data); err != nil {
			return indexBytes, fileBytes, fmt.Errorf("convert: publish upload %s: %w", fp, err)
		}
		fileBytes += int64(len(data))
	}
	return indexBytes, fileBytes, nil
}

// DiskStats exposes the converter's accumulated modeled I/O.
func (c *Converter) DiskStats() disksim.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disk.Stats()
}
