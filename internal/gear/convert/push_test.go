package convert

import (
	"sync"
	"testing"

	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/registry"
)

// plainGearStore hides the registry's batch interfaces, forcing the
// per-object fallback paths.
type plainGearStore struct{ inner *gearregistry.Registry }

func (p plainGearStore) Query(fp hashing.Fingerprint) (bool, error) { return p.inner.Query(fp) }
func (p plainGearStore) Upload(fp hashing.Fingerprint, data []byte) error {
	return p.inner.Upload(fp, data)
}
func (p plainGearStore) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	return p.inner.Download(fp)
}

func newPusher(t *testing.T, opts PushOptions) *Pusher {
	t.Helper()
	p, err := NewPusher(opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPushAllMatchesSerialPublish(t *testing.T) {
	res, err := newConverter(t, Options{}).Convert(buildImage(t, "app", "v1"))
	if err != nil {
		t.Fatal(err)
	}

	// Serial baseline: Publish into a fresh registry.
	serialDocker, serialGear := registry.New(), gearregistry.New(gearregistry.Options{})
	_, wantBytes, err := Publish(res, serialDocker, serialGear)
	if err != nil {
		t.Fatal(err)
	}

	gear := gearregistry.New(gearregistry.Options{})
	docker := registry.New()
	var windows []PushWindow
	p := newPusher(t, PushOptions{Gear: gear, OnPushWindow: func(w PushWindow) {
		windows = append(windows, w)
	}})
	_, window, err := p.Push(res, docker)
	if err != nil {
		t.Fatal(err)
	}

	// Same objects and bytes as the serial path, in one query round trip.
	if got := window.Bytes(); got != wantBytes {
		t.Errorf("uploaded bytes = %d, serial Publish uploaded %d", got, wantBytes)
	}
	if window.Uploaded() != len(res.Files) {
		t.Errorf("uploaded %d objects, want %d", window.Uploaded(), len(res.Files))
	}
	if window.Queried != len(res.Files) || !window.QueryBatched || window.QueryRoundTrips != 1 {
		t.Errorf("query accounting = %+v, want one batched round trip over %d fps", window, len(res.Files))
	}
	if window.Skipped != 0 || window.Deduped != 0 {
		t.Errorf("cold push skipped=%d deduped=%d, want 0/0", window.Skipped, window.Deduped)
	}
	if gs, ws := gear.Stats(), serialGear.Stats(); gs != ws {
		t.Errorf("registry stats %+v differ from serial baseline %+v", gs, ws)
	}
	if len(windows) != 1 {
		t.Errorf("OnPushWindow fired %d times, want 1", len(windows))
	}

	// Second push of the same image: every file already exists remotely,
	// so exactly one QueryBatch round trip and zero uploads.
	window, err = newPusher(t, PushOptions{Gear: gear}).PushAll(res.Files)
	if err != nil {
		t.Fatal(err)
	}
	if window.QueryRoundTrips != 1 || !window.QueryBatched {
		t.Errorf("warm push took %d query round trips (batched=%v), want exactly 1 batched",
			window.QueryRoundTrips, window.QueryBatched)
	}
	if window.Uploaded() != 0 || window.Bytes() != 0 {
		t.Errorf("warm push uploaded %d objects / %d bytes, want zero",
			window.Uploaded(), window.Bytes())
	}
	if window.Skipped != len(res.Files) {
		t.Errorf("warm push skipped %d, want %d", window.Skipped, len(res.Files))
	}
}

func TestPushAllWorkerSweepIsBitIdentical(t *testing.T) {
	res, err := newConverter(t, Options{ChunkSize: 512}).Convert(buildImage(t, "app", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	baseline := gearregistry.New(gearregistry.Options{})
	if _, err := (newPusher(t, PushOptions{Gear: baseline, PushWorkers: 1})).PushAll(res.Files); err != nil {
		t.Fatal(err)
	}
	want := baseline.Stats()
	for _, workers := range []int{2, 4, 8, 16} {
		gear := gearregistry.New(gearregistry.Options{})
		window, err := newPusher(t, PushOptions{Gear: gear, PushWorkers: workers}).PushAll(res.Files)
		if err != nil {
			t.Fatal(err)
		}
		if got := gear.Stats(); got != want {
			t.Errorf("workers=%d: registry stats %+v, want %+v", workers, got, want)
		}
		if window.Uploaded() != len(res.Files) {
			t.Errorf("workers=%d: uploaded %d, want %d", workers, window.Uploaded(), len(res.Files))
		}
		if len(window.Streams) > workers {
			t.Errorf("workers=%d: %d streams", workers, len(window.Streams))
		}
	}
}

func TestPushAllQueryFallback(t *testing.T) {
	res, err := newConverter(t, Options{}).Convert(buildImage(t, "app", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	inner := gearregistry.New(gearregistry.Options{})
	p := newPusher(t, PushOptions{Gear: plainGearStore{inner}})
	window, err := p.PushAll(res.Files)
	if err != nil {
		t.Fatal(err)
	}
	if window.QueryBatched || window.QueryRoundTrips != len(res.Files) {
		t.Errorf("fallback accounting = %+v, want %d per-object round trips",
			window, len(res.Files))
	}
	if window.Uploaded() != len(res.Files) {
		t.Errorf("uploaded %d, want %d", window.Uploaded(), len(res.Files))
	}
}

// Concurrent pushes of overlapping file sets must upload each
// fingerprint exactly once: later callers either join the in-flight
// upload (Deduped) or see it present (Skipped); the registry never
// records a duplicate upload.
func TestPushAllSingleflight(t *testing.T) {
	res, err := newConverter(t, Options{}).Convert(buildImage(t, "app", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	gear := gearregistry.New(gearregistry.Options{})
	p := newPusher(t, PushOptions{Gear: gear, PushWorkers: 4})

	const pushers = 8
	windows := make([]PushWindow, pushers)
	errs := make([]error, pushers)
	var wg sync.WaitGroup
	for i := 0; i < pushers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			windows[i], errs[i] = p.PushAll(res.Files)
		}(i)
	}
	wg.Wait()

	var uploaded, skipped, deduped int
	for i := range windows {
		if errs[i] != nil {
			t.Fatalf("pusher %d: %v", i, errs[i])
		}
		uploaded += windows[i].Uploaded()
		skipped += windows[i].Skipped
		deduped += windows[i].Deduped
	}
	if uploaded != len(res.Files) {
		t.Errorf("uploaded %d objects across %d pushers, want exactly %d",
			uploaded, pushers, len(res.Files))
	}
	if skipped+deduped != (pushers-1)*len(res.Files) {
		t.Errorf("skipped=%d deduped=%d, want %d total avoided uploads",
			skipped, deduped, (pushers-1)*len(res.Files))
	}
	st := gear.Stats()
	if st.DedupHits != 0 {
		t.Errorf("registry dedup hits = %d, want 0 (no duplicate uploads)", st.DedupHits)
	}
	if st.Objects != len(res.Files) {
		t.Errorf("registry objects = %d, want %d", st.Objects, len(res.Files))
	}
}

func TestNewPusherValidates(t *testing.T) {
	if _, err := NewPusher(PushOptions{}); err == nil {
		t.Error("NewPusher accepted a nil gear registry")
	}
}

func TestPushAllEmptySet(t *testing.T) {
	p := newPusher(t, PushOptions{
		Gear:         gearregistry.New(gearregistry.Options{}),
		OnPushWindow: func(PushWindow) { t.Error("hook fired for empty push") },
	})
	window, err := p.PushAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	if window.Queried != 0 || window.Uploaded() != 0 {
		t.Errorf("empty push window = %+v", window)
	}
}
