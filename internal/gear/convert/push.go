package convert

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/registry"
)

// DefaultPushWorkers bounds the upload pool when PushOptions.PushWorkers
// is zero.
const DefaultPushWorkers = 8

// PushOptions configures a Pusher.
type PushOptions struct {
	// Gear is the registry uploads go to. Required.
	Gear gearregistry.Store
	// PushWorkers bounds the concurrent upload pool (default
	// DefaultPushWorkers).
	PushWorkers int
	// OnPushWindow, when set, observes every PushAll call that touched
	// the registry — the hook the deployment simulator uses to charge
	// the query round trip and the upload streams to a modeled link.
	OnPushWindow func(PushWindow)
}

// PushStream describes one upload worker's share of a push window.
type PushStream struct {
	// Objects is how many Gear files the worker uploaded.
	Objects int `json:"objects"`
	// Bytes is the payload volume the worker moved.
	Bytes int64 `json:"bytes"`
}

// PushWindow summarizes one PushAll call: the dedup query and the
// concurrent upload streams that shared the link.
type PushWindow struct {
	// Queried is how many fingerprints were checked against the registry.
	Queried int `json:"queried"`
	// QueryRoundTrips is how many query requests that took: one when the
	// registry supports QueryBatch, one per fingerprint otherwise.
	QueryRoundTrips int `json:"queryRoundTrips"`
	// QueryBatched reports whether the batch path was used.
	QueryBatched bool `json:"queryBatched"`
	// Skipped counts files the registry already held (the paper's
	// query-before-upload dedup, §III-C).
	Skipped int `json:"skipped"`
	// Deduped counts files another in-flight PushAll was already
	// uploading; this call joined that flight instead of re-querying or
	// re-uploading (singleflight across concurrent converts).
	Deduped int `json:"deduped"`
	// Streams are the upload workers that actually moved bytes.
	Streams []PushStream `json:"streams"`
}

// Uploaded returns the total object count across upload streams.
func (w PushWindow) Uploaded() int {
	var n int
	for _, st := range w.Streams {
		n += st.Objects
	}
	return n
}

// Bytes returns the total payload bytes across upload streams.
func (w PushWindow) Bytes() int64 {
	var n int64
	for _, st := range w.Streams {
		n += st.Bytes
	}
	return n
}

// pushFlight is one in-progress upload. Concurrent PushAll calls that
// carry the same fingerprint join the first caller's flight instead of
// querying or uploading it again.
type pushFlight struct {
	done chan struct{}
	err  error
}

// Pusher uploads Gear file sets to a registry: one batched dedup query
// for the whole set, then the absent files through a bounded worker
// pool. Pusher is safe for concurrent use; identical fingerprints across
// concurrent pushes upload once.
type Pusher struct {
	opts PushOptions

	flightMu sync.Mutex
	flights  map[hashing.Fingerprint]*pushFlight
}

// NewPusher returns a Pusher uploading to opts.Gear.
func NewPusher(opts PushOptions) (*Pusher, error) {
	if opts.Gear == nil {
		return nil, fmt.Errorf("convert: push: no gear registry: %w", gearregistry.ErrNotFound)
	}
	if opts.PushWorkers < 1 {
		opts.PushWorkers = DefaultPushWorkers
	}
	return &Pusher{opts: opts, flights: make(map[hashing.Fingerprint]*pushFlight)}, nil
}

// claimFlight registers a flight for fp, or joins the one in progress.
func (p *Pusher) claimFlight(fp hashing.Fingerprint) (f *pushFlight, leader bool) {
	p.flightMu.Lock()
	defer p.flightMu.Unlock()
	if f, ok := p.flights[fp]; ok {
		return f, false
	}
	f = &pushFlight{done: make(chan struct{})}
	p.flights[fp] = f
	return f, true
}

// finishFlight publishes the flight's result and releases waiters.
func (p *Pusher) finishFlight(fp hashing.Fingerprint, f *pushFlight) {
	p.flightMu.Lock()
	delete(p.flights, fp)
	p.flightMu.Unlock()
	close(f.done)
}

// PushAll uploads files to the Gear registry, skipping everything the
// registry already holds. The whole fingerprint set dedups in one
// QueryBatch round trip when the registry supports it; the absent files
// then upload through up to PushWorkers concurrent workers. Fingerprints
// already being uploaded by a concurrent PushAll are joined, not
// re-sent. The returned window describes only the work this call
// performed.
func (p *Pusher) PushAll(files map[hashing.Fingerprint][]byte) (PushWindow, error) {
	var window PushWindow

	// Deterministic order: iterate the set sorted by fingerprint, so
	// shard assignment (and therefore stream accounting) is stable.
	fps := make([]hashing.Fingerprint, 0, len(files))
	for fp := range files {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })

	// Claim or join flights.
	var claimed []hashing.Fingerprint
	claimedFlights := make(map[hashing.Fingerprint]*pushFlight)
	var joined []*pushFlight
	for _, fp := range fps {
		f, leader := p.claimFlight(fp)
		if leader {
			claimed = append(claimed, fp)
			claimedFlights[fp] = f
		} else {
			joined = append(joined, f)
		}
	}
	window.Deduped = len(joined)

	var errs []error
	if len(claimed) > 0 {
		present, batched, err := gearregistry.QueryAll(p.opts.Gear, claimed)
		if err != nil {
			err = fmt.Errorf("convert: push query: %w", err)
			for _, fp := range claimed {
				f := claimedFlights[fp]
				f.err = err
				p.finishFlight(fp, f)
			}
			errs = append(errs, err)
		} else {
			window.Queried = len(claimed)
			window.QueryBatched = batched
			if batched {
				window.QueryRoundTrips = 1
			} else {
				window.QueryRoundTrips = len(claimed)
			}

			// Files the registry already holds are done: dedup hit.
			var absent []hashing.Fingerprint
			for i, fp := range claimed {
				if present[i] {
					window.Skipped++
					p.finishFlight(fp, claimedFlights[fp])
				} else {
					absent = append(absent, fp)
				}
			}

			// Upload the absent set through the bounded pool.
			if len(absent) > 0 {
				workers := min(p.opts.PushWorkers, len(absent))
				streams := make([]PushStream, workers)
				workerErrs := make([]error, workers)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					// Contiguous balanced shards: worker w takes [lo, hi).
					lo := w * len(absent) / workers
					hi := (w + 1) * len(absent) / workers
					wg.Add(1)
					go func(w int, shard []hashing.Fingerprint) {
						defer wg.Done()
						streams[w], workerErrs[w] = p.pushShard(shard, files, claimedFlights)
					}(w, absent[lo:hi])
				}
				wg.Wait()
				for w := 0; w < workers; w++ {
					if streams[w].Objects > 0 {
						window.Streams = append(window.Streams, streams[w])
					}
					if workerErrs[w] != nil {
						errs = append(errs, workerErrs[w])
					}
				}
			}
		}
	}

	if window.Queried > 0 && p.opts.OnPushWindow != nil {
		p.opts.OnPushWindow(window)
	}

	for _, f := range joined {
		<-f.done
		if f.err != nil {
			errs = append(errs, f.err)
		}
	}
	return window, errors.Join(errs...)
}

// pushShard uploads one worker's shard. Every claimed flight in the
// shard is completed exactly once, success or failure.
func (p *Pusher) pushShard(shard []hashing.Fingerprint, files map[hashing.Fingerprint][]byte, flights map[hashing.Fingerprint]*pushFlight) (PushStream, error) {
	var st PushStream
	var errs []error
	for _, fp := range shard {
		f := flights[fp]
		data := files[fp]
		err := p.opts.Gear.Upload(fp, data)
		if err != nil {
			err = fmt.Errorf("convert: push upload %s: %w", fp, err)
			errs = append(errs, err)
		} else {
			st.Objects++
			st.Bytes += int64(len(data))
		}
		f.err = err
		p.finishFlight(fp, f)
	}
	return st, errors.Join(errs...)
}

// Push publishes a conversion result through the pipeline: the index
// image goes to the Docker registry serially (it is one tiny image), the
// Gear files go through PushAll. It is the concurrent counterpart of
// Publish and moves exactly the same bytes.
func (p *Pusher) Push(res *Result, docker registry.Store) (indexBytes int64, window PushWindow, err error) {
	indexBytes, err = registry.Push(docker, res.IndexImage)
	if err != nil {
		return 0, PushWindow{}, fmt.Errorf("convert: push index: %w", err)
	}
	window, err = p.PushAll(res.Files)
	return indexBytes, window, err
}
