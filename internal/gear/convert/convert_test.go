package convert

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/gear-image/gear/internal/disksim"
	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/registry"
	"github.com/gear-image/gear/internal/vfs"
)

// buildImage assembles a two-layer Docker image with a whiteout in the
// top layer, exercising full layer semantics during conversion.
func buildImage(t *testing.T, name, tag string) *imagefmt.Image {
	t.Helper()
	base := vfs.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(base.MkdirAll("/etc", 0o755))
	must(base.MkdirAll("/bin", 0o755))
	must(base.WriteFile("/bin/sh", []byte("#!base shell"), 0o755))
	must(base.WriteFile("/etc/removed-later", []byte("temp"), 0o644))
	must(base.WriteFile("/etc/conf", []byte("config v1"), 0o644))

	top := vfs.New()
	must(top.MkdirAll("/etc", 0o755))
	must(top.WriteFile("/etc/.wh.removed-later", nil, 0))
	must(top.WriteFile("/etc/app", bytes.Repeat([]byte{0x5a}, 2048), 0o755))
	must(top.Symlink("/etc/app", "/etc/app-link"))

	b := imagefmt.NewBuilder(name, tag)
	b.SetConfig(imagefmt.Config{Env: []string{"LANG=C"}, Cmd: []string{"/etc/app"}})
	must(b.AddDiffLayer(base))
	must(b.AddDiffLayer(top))
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func newConverter(t *testing.T, opts Options) *Converter {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConvertBasics(t *testing.T) {
	c := newConverter(t, Options{})
	img := buildImage(t, "app", "v1")
	res, err := c.Convert(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Index.Validate(); err != nil {
		t.Fatal(err)
	}
	// Whiteouts must be resolved: removed-later is gone from the index.
	if res.Index.Lookup("/etc/removed-later") != nil {
		t.Error("whiteouted file survived conversion")
	}
	for _, p := range []string{"/bin/sh", "/etc/conf", "/etc/app"} {
		e := res.Index.Lookup(p)
		if e == nil || e.Type != vfs.TypeRegular {
			t.Errorf("index missing %s", p)
			continue
		}
		data, ok := res.Files[e.Fingerprint]
		if !ok {
			t.Errorf("pool missing %s", p)
			continue
		}
		if hashing.FingerprintBytes(data) != e.Fingerprint {
			t.Errorf("pool content mismatch for %s", p)
		}
	}
	// Symlink carried over.
	if e := res.Index.Lookup("/etc/app-link"); e == nil || e.Target != "/etc/app" {
		t.Error("symlink lost")
	}
	// Config copied (§III-C).
	if len(res.Index.Config.Env) != 1 || res.Index.Config.Env[0] != "LANG=C" {
		t.Error("config not copied")
	}
	// Index image is single-layer and labeled.
	if len(res.IndexImage.Layers) != 1 {
		t.Error("index image not single-layer")
	}
	if res.IndexImage.Manifest.Config.Labels[index.IndexLabel] == "" {
		t.Error("index image unlabeled")
	}
	// Timing is populated and ordered sensibly.
	if res.Timing.Unpack <= 0 || res.Timing.Traverse <= 0 || res.Timing.Build <= 0 {
		t.Errorf("timing = %+v", res.Timing)
	}
	if res.Timing.Total() != res.Timing.Unpack+res.Timing.Traverse+res.Timing.Build {
		t.Error("Total() mismatch")
	}
}

func TestConvertOnlyOnce(t *testing.T) {
	c := newConverter(t, Options{})
	img := buildImage(t, "app", "v1")
	if _, err := c.Convert(img); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Convert(img); !errors.Is(err, ErrAlreadyConverted) {
		t.Errorf("err = %v, want ErrAlreadyConverted", err)
	}
	// A different tag converts fine.
	if _, err := c.Convert(buildImage(t, "app", "v2")); err != nil {
		t.Error(err)
	}
}

func TestConvertRejectsInvalidImage(t *testing.T) {
	c := newConverter(t, Options{})
	img := buildImage(t, "app", "v1")
	img.Layers = img.Layers[:1] // manifest now disagrees
	if _, err := c.Convert(img); err == nil {
		t.Error("invalid image accepted")
	}
}

func TestConversionTimeProportionalToSize(t *testing.T) {
	// Fig 6: larger images (more files) take proportionally longer.
	mkImage := func(files int) *imagefmt.Image {
		f := vfs.New()
		rng := rand.New(rand.NewSource(int64(files)))
		for i := 0; i < files; i++ {
			data := make([]byte, 1024)
			rng.Read(data)
			if err := f.WriteFile(fmt.Sprintf("/f%04d", i), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		img, err := imagefmt.SingleLayerImage(fmt.Sprintf("sz%d", files), "v", f, imagefmt.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	c := newConverter(t, Options{})
	small, err := c.Convert(mkImage(50))
	if err != nil {
		t.Fatal(err)
	}
	large, err := c.Convert(mkImage(500))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(large.Timing.Total()) / float64(small.Timing.Total())
	if ratio < 5 || ratio > 20 {
		t.Errorf("10x files -> %.1fx time; want roughly proportional", ratio)
	}
}

func TestSSDFasterThanHDD(t *testing.T) {
	// The paper: node's conversion drops 65.7% on SSD.
	img := buildImage(t, "app", "v1")
	hdd := newConverter(t, Options{Disk: disksim.HDD()})
	ssd := newConverter(t, Options{Disk: disksim.SSD()})
	rh, err := hdd.Convert(img)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ssd.Convert(img)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Timing.Total() >= rh.Timing.Total() {
		t.Errorf("ssd %v not faster than hdd %v", rs.Timing.Total(), rh.Timing.Total())
	}
	reduction := 1 - float64(rs.Timing.Total())/float64(rh.Timing.Total())
	if reduction < 0.5 {
		t.Errorf("ssd reduction = %.2f, want > 0.5", reduction)
	}
}

func TestSharedFilesAcrossConversions(t *testing.T) {
	// Identical content in two images receives the same fingerprint, the
	// basis of cross-image dedup in the Gear registry.
	c := newConverter(t, Options{})
	r1, err := c.Convert(buildImage(t, "app", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Convert(buildImage(t, "other", "v9"))
	if err != nil {
		t.Fatal(err)
	}
	e1 := r1.Index.Lookup("/bin/sh")
	e2 := r2.Index.Lookup("/bin/sh")
	if e1 == nil || e2 == nil || e1.Fingerprint != e2.Fingerprint {
		t.Error("identical files got different fingerprints across images")
	}
}

func TestChunkedConversion(t *testing.T) {
	f := vfs.New()
	big := make([]byte, 16384)
	rand.New(rand.NewSource(7)).Read(big) // distinct chunks, no accidental dedup
	if err := f.WriteFile("/model.bin", big, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile("/small", []byte("tiny"), 0o644); err != nil {
		t.Fatal(err)
	}
	img, err := imagefmt.SingleLayerImage("ai", "v1", f, imagefmt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := newConverter(t, Options{ChunkSize: 4096})
	res, err := c.Convert(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Index.Validate(); err != nil {
		t.Fatal(err)
	}
	e := res.Index.Lookup("/model.bin")
	if e == nil || len(e.Chunks) != 4 {
		t.Fatalf("chunks = %v", e)
	}
	// Chunks reassemble to the original content.
	var assembled []byte
	for _, ch := range e.Chunks {
		piece, ok := res.Files[ch.Fingerprint]
		if !ok {
			t.Fatalf("pool missing chunk %s", ch.Fingerprint)
		}
		assembled = append(assembled, piece...)
	}
	if !bytes.Equal(assembled, big) {
		t.Error("chunks do not reassemble")
	}
	// Small file not chunked.
	if e := res.Index.Lookup("/small"); e == nil || len(e.Chunks) != 0 {
		t.Error("small file chunked")
	}
	// ChunkMap exposes the mapping.
	cm := res.Index.ChunkMap()
	if len(cm) != 1 || len(cm[res.Index.Lookup("/model.bin").Fingerprint]) != 4 {
		t.Errorf("chunk map = %v", cm)
	}
	// Files() returns chunk fingerprints for chunked entries.
	refs := res.Index.Files()
	want := 5 // 4 chunks + small
	if len(refs) != want {
		t.Errorf("files = %d, want %d", len(refs), want)
	}
}

func TestPublish(t *testing.T) {
	c := newConverter(t, Options{})
	docker := registry.New()
	gear := gearregistry.New(gearregistry.Options{})

	r1, err := c.Convert(buildImage(t, "app", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	ib1, fb1, err := Publish(r1, docker, gear)
	if err != nil {
		t.Fatal(err)
	}
	if ib1 <= 0 || fb1 <= 0 {
		t.Errorf("first publish uploaded %d index / %d file bytes", ib1, fb1)
	}
	// Second image shares most files: uploads must shrink.
	r2, err := c.Convert(buildImage(t, "app", "v2"))
	if err != nil {
		t.Fatal(err)
	}
	_, fb2, err := Publish(r2, docker, gear)
	if err != nil {
		t.Fatal(err)
	}
	if fb2 != 0 {
		t.Errorf("identical content re-uploaded %d bytes, want 0", fb2)
	}
	// The index is pullable back from the Docker registry.
	img, err := registry.Pull(docker, "app", "v1")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.FromImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Reference() != "app:v1" {
		t.Errorf("pulled index ref = %s", ix.Reference())
	}
	// Every file the index references is downloadable from the gear store.
	for _, ref := range ix.Files() {
		data, _, err := gear.Download(ref.Fingerprint)
		if err != nil {
			t.Errorf("download %s: %v", ref.Fingerprint, err)
			continue
		}
		if int64(len(data)) != ref.Size {
			t.Errorf("size mismatch for %s", ref.Fingerprint)
		}
	}
}

func TestIndexNameOverride(t *testing.T) {
	c := newConverter(t, Options{IndexName: "gear/app"})
	res, err := c.Convert(buildImage(t, "app", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Index.Name != "gear/app" || res.Index.Tag != "v1" {
		t.Errorf("index ref = %s", res.Index.Reference())
	}
}

func TestDiskStatsAccumulate(t *testing.T) {
	c := newConverter(t, Options{})
	if _, err := c.Convert(buildImage(t, "app", "v1")); err != nil {
		t.Fatal(err)
	}
	s := c.DiskStats()
	if s.Reads == 0 || s.Writes == 0 || s.Elapsed == 0 {
		t.Errorf("disk stats = %+v", s)
	}
}

// TestConcurrentConversions: the Converter's documented contract is that
// it is safe for concurrent use (conversions serialize internally).
// Distinct images converting in parallel must all succeed, share the
// fingerprint registry, and leave consistent disk stats; a duplicate
// reference still fails with ErrAlreadyConverted no matter which
// goroutine wins.
func TestConcurrentConversions(t *testing.T) {
	c := newConverter(t, Options{})
	const images = 8
	results := make([]*Result, images)
	errs := make([]error, images)
	var wg sync.WaitGroup
	for i := 0; i < images; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			img := buildImage(t, fmt.Sprintf("app%d", i), "v1")
			results[i], errs[i] = c.Convert(img)
		}(i)
	}
	// Race two conversions of the same reference: exactly one wins.
	dupErrs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, dupErrs[i] = c.Convert(buildImage(t, "dup", "v1"))
		}(i)
	}
	wg.Wait()

	for i := 0; i < images; i++ {
		if errs[i] != nil {
			t.Fatalf("image %d: %v", i, errs[i])
		}
		if results[i] == nil || results[i].Index == nil {
			t.Fatalf("image %d: no result", i)
		}
	}
	var already int
	for _, err := range dupErrs {
		if errors.Is(err, ErrAlreadyConverted) {
			already++
		} else if err != nil {
			t.Fatalf("duplicate conversion: %v", err)
		}
	}
	if already != 1 {
		t.Errorf("duplicate conversions rejected = %d, want exactly 1", already)
	}
	if st := c.DiskStats(); st.ReadBytes == 0 && st.WriteBytes == 0 {
		t.Error("disk stats empty after conversions")
	}
}

// A parallel conversion must produce the same Gear image as the serial
// baseline — same index bytes, same pool — while the modeled time is
// monotone non-increasing in the worker count.
func TestParallelConversionMatchesSerial(t *testing.T) {
	img := buildImage(t, "app", "v1")
	serial := newConverter(t, Options{ChunkSize: 512})
	want, err := serial.Convert(img)
	if err != nil {
		t.Fatal(err)
	}
	wantEnc, err := index.Encode(want.Index)
	if err != nil {
		t.Fatal(err)
	}
	prev := want.Timing.Total()
	for _, workers := range []int{1, 2, 4, 8, 16} {
		c := newConverter(t, Options{ChunkSize: 512, Workers: workers})
		res, err := c.Convert(buildImage(t, "app", "v1"))
		if err != nil {
			t.Fatal(err)
		}
		enc, err := index.Encode(res.Index)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, wantEnc) {
			t.Fatalf("workers=%d: index differs from serial conversion", workers)
		}
		if len(res.Files) != len(want.Files) {
			t.Fatalf("workers=%d: pool size %d, want %d", workers, len(res.Files), len(want.Files))
		}
		for fp, data := range want.Files {
			if !bytes.Equal(res.Files[fp], data) {
				t.Fatalf("workers=%d: pool content differs at %s", workers, fp)
			}
		}
		if workers == 1 && res.Timing != want.Timing {
			t.Fatalf("workers=1 timing %+v differs from serial baseline %+v", res.Timing, want.Timing)
		}
		if got := res.Timing.Total(); got > prev {
			t.Fatalf("workers=%d: time %v regressed from %v", workers, got, prev)
		} else {
			prev = got
		}
	}
}

// A second Convert of the same reference returns the cached Result
// alongside ErrAlreadyConverted, so callers can re-push without paying
// for a reconversion.
func TestConvertReturnsCachedResult(t *testing.T) {
	c := newConverter(t, Options{})
	img := buildImage(t, "app", "v1")
	first, err := c.Convert(img)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Convert(img)
	if !errors.Is(err, ErrAlreadyConverted) {
		t.Fatalf("err = %v, want ErrAlreadyConverted", err)
	}
	if again != first {
		t.Error("second Convert did not return the cached Result")
	}
}
