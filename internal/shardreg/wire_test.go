package shardreg

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/gear-image/gear/internal/hashing"
)

func TestRoutedRequestRoundTrip(t *testing.T) {
	fps := ringFps(5)
	for _, verb := range []string{VerbQuery, VerbDownload} {
		in := RoutedRequest{Shard: "shard00", Verb: verb, Fps: fps}
		out, err := ParseRoutedRequest(EncodeRoutedRequest(in))
		if err != nil {
			t.Fatal(err)
		}
		if out.Shard != in.Shard || out.Verb != in.Verb || len(out.Fps) != len(in.Fps) {
			t.Fatalf("round trip = %+v", out)
		}
		for i := range fps {
			if out.Fps[i] != fps[i] {
				t.Fatalf("fp %d = %s, want %s", i, out.Fps[i], fps[i])
			}
		}
	}
	// Empty batches frame fine.
	if _, err := ParseRoutedRequest(EncodeRoutedRequest(RoutedRequest{Shard: "s", Verb: VerbQuery})); err != nil {
		t.Fatal(err)
	}
}

func TestParseRoutedRequestRejects(t *testing.T) {
	fp := string(ringFps(1)[0])
	for _, bad := range []string{
		"",
		"gear-shard s query\n",                      // missing count
		"gear-shard s query 1\n",                    // count without fingerprints
		"wrong-magic s query 0\n",                   // bad magic
		"gear-shard s steal 0\n",                    // unknown verb
		"gear-shard bad!id query 0\n",               // bad shard id
		"gear-shard s query -1\n",                   // negative count
		"gear-shard s query 1\nzzzz\n",              // malformed fingerprint
		"gear-shard s query 0\ntrailing\n",          // trailing bytes
		"gear-shard s query 99999999999999999999\n", // overflow count
	} {
		if _, err := ParseRoutedRequest([]byte(bad)); !errors.Is(err, ErrBadFrame) {
			t.Errorf("ParseRoutedRequest(%q) err = %v, want ErrBadFrame", bad, err)
		}
	}
	good := "gear-shard s query 1\n" + fp + "\n"
	if _, err := ParseRoutedRequest([]byte(good)); err != nil {
		t.Fatalf("well-formed request rejected: %v", err)
	}
}

func TestQueryResponseRoundTrip(t *testing.T) {
	fps := ringFps(4)
	present := []bool{true, false, true, false}
	shard, gotFps, gotPresent, err := ParseQueryResponse(EncodeQueryResponse("shard01", fps, present))
	if err != nil {
		t.Fatal(err)
	}
	if shard != "shard01" || len(gotFps) != 4 {
		t.Fatalf("shard %q, %d fps", shard, len(gotFps))
	}
	for i := range fps {
		if gotFps[i] != fps[i] || gotPresent[i] != present[i] {
			t.Fatalf("entry %d = %s/%v, want %s/%v", i, gotFps[i], gotPresent[i], fps[i], present[i])
		}
	}
}

func TestDownloadResponseRoundTrip(t *testing.T) {
	fps := ringFps(3)
	payloads := [][]byte{[]byte("alpha"), {}, bytes.Repeat([]byte("x"), 999)}
	shard, gotFps, gotPayloads, err := ParseDownloadResponse(EncodeDownloadResponse("shard02", fps, payloads))
	if err != nil {
		t.Fatal(err)
	}
	if shard != "shard02" {
		t.Fatalf("shard = %q", shard)
	}
	for i := range fps {
		if gotFps[i] != fps[i] || !bytes.Equal(gotPayloads[i], payloads[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	// A verb mix-up between the response parsers is detected.
	if _, _, _, err := ParseQueryResponse(EncodeDownloadResponse("s", fps, payloads)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("download frame accepted as query response: %v", err)
	}
	if _, _, _, err := ParseDownloadResponse(EncodeQueryResponse("s", fps, []bool{true, true, true})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("query frame accepted as download response: %v", err)
	}
}

// The HTTP front-end routes shard-addressed batches and maps routing
// errors onto status codes: 404 unknown shard, 503 killed shard, 400
// malformed framing.
func TestHandlerRouting(t *testing.T) {
	c := newCluster(t, 3, 2, Options{})
	objs := corpus(t, 10)
	uploadAll(t, c, objs)
	var fp hashing.Fingerprint
	for f := range objs {
		fp = f
		break
	}
	target := c.Replicas(fp)[0]
	h := NewHandler(c)

	post := func(body []byte) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/shard", bytes.NewReader(body)))
		return rec
	}

	// Query against the owning shard.
	rec := post(EncodeRoutedRequest(RoutedRequest{Shard: target, Verb: VerbQuery, Fps: []hashing.Fingerprint{fp}}))
	if rec.Code != http.StatusOK {
		t.Fatalf("query status = %d: %s", rec.Code, rec.Body)
	}
	shard, fps, present, err := ParseQueryResponse(rec.Body.Bytes())
	if err != nil || shard != target || !present[0] || fps[0] != fp {
		t.Fatalf("query response %q/%v/%v (err %v)", shard, fps, present, err)
	}

	// Download round trips payload bytes.
	rec = post(EncodeRoutedRequest(RoutedRequest{Shard: target, Verb: VerbDownload, Fps: []hashing.Fingerprint{fp}}))
	if rec.Code != http.StatusOK {
		t.Fatalf("download status = %d: %s", rec.Code, rec.Body)
	}
	_, _, payloads, err := ParseDownloadResponse(rec.Body.Bytes())
	if err != nil || !bytes.Equal(payloads[0], objs[fp]) {
		t.Fatalf("download payload mismatch (err %v)", err)
	}

	// Unknown shard -> 404.
	rec = post(EncodeRoutedRequest(RoutedRequest{Shard: "ghost", Verb: VerbQuery, Fps: []hashing.Fingerprint{fp}}))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown shard status = %d", rec.Code)
	}
	// Killed shard -> 503.
	if err := c.KillShard(target); err != nil {
		t.Fatal(err)
	}
	rec = post(EncodeRoutedRequest(RoutedRequest{Shard: target, Verb: VerbQuery, Fps: []hashing.Fingerprint{fp}}))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("killed shard status = %d", rec.Code)
	}
	// Malformed framing -> 400.
	if rec := post([]byte("not a frame")); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed frame status = %d", rec.Code)
	}
	// Wrong method / path.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/shard", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/other", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("bad path status = %d", rec.Code)
	}
}
