package shardreg

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/netsim"
)

// bigObject uploads one multi-KB object through the router and returns
// its fingerprint and bytes.
func bigObject(t *testing.T, c *Cluster) (hashing.Fingerprint, []byte) {
	t.Helper()
	data := make([]byte, 16384)
	for i := range data {
		data[i] = byte(i*131 + i>>8)
	}
	fp := hashing.FingerprintBytes(data)
	if err := c.Upload(fp, data); err != nil {
		t.Fatal(err)
	}
	return fp, data
}

// Ranges route by the same replica chain as whole reads and return the
// exact slice, for plain and compressed tiers alike.
func TestClusterDownloadRange(t *testing.T) {
	for _, compress := range []bool{false, true} {
		c := newCluster(t, 4, 2, Options{Compress: compress})
		fp, data := bigObject(t, c)
		for _, r := range []struct{ off, n int64 }{
			{0, 1}, {0, 16384}, {16383, 1}, {1000, 7777},
		} {
			got, wire, err := c.DownloadRange(fp, r.off, r.n)
			if err != nil {
				t.Fatalf("compress=%v range [%d,+%d): %v", compress, r.off, r.n, err)
			}
			if wire != r.n || !bytes.Equal(got, data[r.off:r.off+r.n]) {
				t.Fatalf("compress=%v range [%d,+%d): wrong slice (wire %d)", compress, r.off, r.n, wire)
			}
		}
		// Ranges are served by a replica of fp, counted in read telemetry.
		replicas := map[string]bool{}
		for _, id := range c.Replicas(fp) {
			replicas[id] = true
		}
		served := 0
		for _, ss := range c.Stats().Shards {
			if ss.Reads > 0 {
				if !replicas[ss.ID] {
					t.Fatalf("compress=%v: non-replica %s served reads", compress, ss.ID)
				}
				served++
			}
		}
		if served == 0 {
			t.Fatalf("compress=%v: no shard counted the ranges", compress)
		}
	}
}

// Bad ranges and misses surface the registry's own errors; an
// out-of-bounds range must not burn failovers — every replica stores
// the same bytes.
func TestClusterDownloadRangeErrors(t *testing.T) {
	c := newCluster(t, 3, 2, Options{})
	fp, _ := bigObject(t, c)
	for _, r := range []struct{ off, n int64 }{
		{-1, 5}, {0, 0}, {16384, 1}, {0, 16385},
	} {
		if _, _, err := c.DownloadRange(fp, r.off, r.n); !errors.Is(err, gearregistry.ErrBadRange) {
			t.Fatalf("range [%d,+%d) = %v, want ErrBadRange", r.off, r.n, err)
		}
	}
	if _, _, err := c.DownloadRange("zz", 0, 1); !errors.Is(err, hashing.ErrMalformed) {
		t.Fatalf("malformed fp: %v", err)
	}
	absent := hashing.FingerprintBytes([]byte("absent"))
	if _, _, err := c.DownloadRange(absent, 0, 1); !errors.Is(err, gearregistry.ErrNotFound) {
		t.Fatalf("absent: %v", err)
	}
	if f := c.Stats().Failovers; f != 0 {
		t.Fatalf("permanent range errors burned %d failovers", f)
	}
}

// Killing the primary fails ranges over to the next replica, exactly
// like whole-object downloads.
func TestClusterRangeFailover(t *testing.T) {
	c := newCluster(t, 4, 2, Options{})
	fp, data := bigObject(t, c)
	primary := c.Replicas(fp)[0]
	if err := c.KillShard(primary); err != nil {
		t.Fatal(err)
	}
	got, wire, err := c.DownloadRange(fp, 4000, 1000)
	if err != nil || wire != 1000 || !bytes.Equal(got, data[4000:5000]) {
		t.Fatalf("failover range = %v (wire %d)", err, wire)
	}
	if f := c.Stats().Failovers; f != 1 {
		t.Fatalf("failovers = %d, want 1", f)
	}
	for _, id := range c.Shards() {
		if err := c.KillShard(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.DownloadRange(fp, 0, 1); !errors.Is(err, ErrShardDown) {
		t.Fatalf("all dead: %v", err)
	}
}

// Under a topology, a range is priced as a range transfer on the
// serving replica's WAN link: same cost a reference TransferRange of
// the same wire volume quotes, and zero cost/stat motion on every
// other shard.
func TestClusterRangePricing(t *testing.T) {
	wan := netsim.DefaultLAN().WithBandwidth(200)
	wan.RangeOverhead = 3 * time.Millisecond
	lan := netsim.DefaultLAN()
	topo, err := netsim.NewTopology(wan, lan)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := netsim.NewTopology(wan, lan)
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, 3, 1, Options{Topology: topo})
	fp, data := bigObject(t, c)
	primary := c.Replicas(fp)[0]
	base := topo.Node(primary).WAN.Stats()
	// Mirror upload traffic into the reference link's jitter stream.
	refLink := ref.Node(primary).WAN
	if _, err := refLink.TransferE(int64(len(data))); err != nil {
		t.Fatal(err)
	}
	refBase := refLink.Stats()

	payload, wire, cost, err := c.DownloadRangeTimed(fp, 2048, 4096)
	if err != nil || !bytes.Equal(payload, data[2048:2048+4096]) {
		t.Fatalf("timed range: %v", err)
	}
	want, err := refLink.TransferRangeE(wire)
	if err != nil {
		t.Fatal(err)
	}
	if cost != want {
		t.Fatalf("range cost %v, want TransferRange cost %v", cost, want)
	}
	got := topo.Node(primary).WAN.Stats().Sub(base)
	wantSt := refLink.Stats().Sub(refBase)
	if got != wantSt {
		t.Fatalf("primary link stats %+v, want %+v", got, wantSt)
	}
	for _, id := range c.Shards() {
		if id == primary {
			continue
		}
		if st := topo.Node(id).WAN.Stats(); st.Requests != 0 {
			t.Fatalf("non-serving shard %s moved traffic: %+v", id, st)
		}
	}
}
