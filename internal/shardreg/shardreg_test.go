package shardreg

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/telemetry"
)

// corpus returns n deterministic objects keyed by fingerprint.
func corpus(t testing.TB, n int) map[hashing.Fingerprint][]byte {
	t.Helper()
	out := make(map[hashing.Fingerprint][]byte, n)
	for i := 0; i < n; i++ {
		data := bytes.Repeat([]byte(fmt.Sprintf("gear object %d ", i)), 4+i%7)
		out[hashing.FingerprintBytes(data)] = data
	}
	return out
}

func newCluster(t testing.TB, shards, replicas int, opts Options) *Cluster {
	t.Helper()
	opts.Shards = ringShards(shards)
	opts.Replication = replicas
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func uploadAll(t testing.TB, dst gearregistry.Store, objs map[hashing.Fingerprint][]byte) {
	t.Helper()
	for fp, data := range objs {
		if err := dst.Upload(fp, data); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); !errors.Is(err, ErrNoShards) {
		t.Fatalf("no shards: err = %v", err)
	}
	if _, err := New(Options{Shards: []string{"a"}, Replication: 2}); !errors.Is(err, ErrBadReplication) {
		t.Fatalf("replication > shards: err = %v", err)
	}
	if _, err := New(Options{Shards: []string{"bad id"}}); !errors.Is(err, ErrBadShardID) {
		t.Fatalf("bad shard id: err = %v", err)
	}
	if _, err := New(Options{Shards: []string{"a", "a"}}); !errors.Is(err, ErrDuplicateShard) {
		t.Fatalf("duplicate shard: err = %v", err)
	}
}

// Round trip across a replicated tier: every verb works through the
// router, and each object lands on exactly Replication shards.
func TestClusterRoundTrip(t *testing.T) {
	c := newCluster(t, 4, 2, Options{})
	objs := corpus(t, 40)
	uploadAll(t, c, objs)

	var fps []hashing.Fingerprint
	for fp, data := range objs {
		fps = append(fps, fp)
		present, err := c.Query(fp)
		if err != nil || !present {
			t.Fatalf("Query(%s) = %v, %v", fp, present, err)
		}
		got, _, err := c.Download(fp)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("Download(%s) mismatch (err %v)", fp, err)
		}
	}

	present, err := c.QueryBatch(fps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range present {
		if !present[i] {
			t.Fatalf("QueryBatch missed %s", fps[i])
		}
	}
	payloads, wire, err := c.DownloadBatch(fps)
	if err != nil {
		t.Fatal(err)
	}
	if wire <= 0 {
		t.Fatalf("wire = %d", wire)
	}
	for i, p := range payloads {
		if !bytes.Equal(p, objs[fps[i]]) {
			t.Fatalf("DownloadBatch payload %d mismatch", i)
		}
	}

	st := c.Stats()
	if st.Objects != 2*len(objs) {
		t.Fatalf("tier holds %d replica copies, want %d", st.Objects, 2*len(objs))
	}
	// Placement agrees with the ring: each object is stored on exactly
	// its replica set.
	for _, fp := range fps {
		want := c.Replicas(fp)
		if len(want) != 2 {
			t.Fatalf("Replicas(%s) = %v", fp, want)
		}
		for _, id := range want {
			if ok, err := c.ShardQueryBatch(id, []hashing.Fingerprint{fp}); err != nil || !ok[0] {
				t.Fatalf("replica %s missing %s (err %v)", id, fp, err)
			}
		}
	}
}

// A 1-shard, 1-replica cluster must degenerate bit-identically to a
// single compressed registry: same payloads, same wire bytes, same
// stored bytes.
func TestSingleShardParity(t *testing.T) {
	single := gearregistry.New(gearregistry.Options{Compress: true})
	c := newCluster(t, 1, 1, Options{Compress: true})
	objs := corpus(t, 30)
	uploadAll(t, single, objs)
	uploadAll(t, c, objs)

	var fps []hashing.Fingerprint
	for fp := range objs {
		fps = append(fps, fp)
	}

	for _, fp := range fps {
		wantP, wantW, err := single.Download(fp)
		if err != nil {
			t.Fatal(err)
		}
		gotP, gotW, err := c.Download(fp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantP, gotP) || wantW != gotW {
			t.Fatalf("Download(%s): wire %d vs %d", fp, gotW, wantW)
		}
	}

	wantPs, wantW, err := single.DownloadBatch(fps)
	if err != nil {
		t.Fatal(err)
	}
	gotPs, gotW, err := c.DownloadBatch(fps)
	if err != nil {
		t.Fatal(err)
	}
	if wantW != gotW {
		t.Fatalf("batch wire %d, single registry %d", gotW, wantW)
	}
	for i := range wantPs {
		if !bytes.Equal(wantPs[i], gotPs[i]) {
			t.Fatalf("batch payload %d mismatch", i)
		}
	}

	if got, want := c.Stats().StoredBytes, single.Stats().StoredBytes; got != want {
		t.Fatalf("tier stores %d bytes, single registry %d", got, want)
	}

	// Absent objects still read as a single registry: ErrNotFound.
	if _, _, err := c.Download(hashing.FingerprintBytes([]byte("absent"))); !errors.Is(err, gearregistry.ErrNotFound) {
		t.Fatalf("absent download err = %v", err)
	}
	if _, _, err := c.DownloadBatch([]hashing.Fingerprint{hashing.FingerprintBytes([]byte("absent"))}); !errors.Is(err, gearregistry.ErrNotFound) {
		t.Fatalf("absent batch err = %v", err)
	}
}

// With replication 2, killing any single shard must leave every object
// readable from its surviving replica, and the failovers counter must
// record the re-routes.
func TestFailoverServesFromReplica(t *testing.T) {
	c := newCluster(t, 4, 2, Options{})
	objs := corpus(t, 40)
	uploadAll(t, c, objs)

	victim := c.Shards()[0]
	if err := c.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	var fps []hashing.Fingerprint
	for fp, data := range objs {
		fps = append(fps, fp)
		got, _, err := c.Download(fp)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("Download(%s) with %s down: %v", fp, victim, err)
		}
	}
	payloads, _, err := c.DownloadBatch(fps)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if !bytes.Equal(p, objs[fps[i]]) {
			t.Fatalf("batch payload %d mismatch with %s down", i, victim)
		}
	}
	if c.Stats().Failovers == 0 {
		t.Fatal("no failovers recorded despite a dead primary")
	}

	// Shard-addressed verbs refuse a dead shard outright.
	if _, err := c.ShardQueryBatch(victim, fps[:1]); !errors.Is(err, ErrShardDown) {
		t.Fatalf("ShardQueryBatch on dead shard err = %v", err)
	}

	// Kill every replica of some object: reads must fail with
	// ErrShardDown once no replica is live.
	for _, id := range c.Shards() {
		_ = c.KillShard(id)
	}
	if _, _, err := c.Download(fps[0]); !errors.Is(err, ErrShardDown) {
		t.Fatalf("all-down download err = %v", err)
	}
	if _, _, err := c.DownloadBatch(fps[:3]); !errors.Is(err, ErrShardDown) {
		t.Fatalf("all-down batch err = %v", err)
	}

	if err := c.ReviveShard(victim); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ShardDownloadBatch(victim, fps[:1]); err != nil {
		// fps[:1] may not live on victim; only routing errors are fatal.
		if errors.Is(err, ErrShardDown) || errors.Is(err, ErrUnknownShard) {
			t.Fatalf("revived shard still refuses: %v", err)
		}
	}
}

// Uploads during a partial outage land on the surviving replicas
// (counted degraded) and Rebalance backfills the revived shard.
func TestDegradedUploadAndBackfill(t *testing.T) {
	c := newCluster(t, 3, 2, Options{})
	victim := c.Shards()[0]
	if err := c.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	objs := corpus(t, 30)
	uploadAll(t, c, objs)
	st := c.Stats()
	if st.DegradedUploads == 0 {
		t.Fatal("no degraded uploads recorded with a replica down")
	}

	if err := c.ReviveShard(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	// After backfill every object is on its full replica set again.
	for fp := range objs {
		for _, id := range c.Replicas(fp) {
			ok, err := c.ShardQueryBatch(id, []hashing.Fingerprint{fp})
			if err != nil || !ok[0] {
				t.Fatalf("replica %s missing %s after backfill (err %v)", id, fp, err)
			}
		}
	}
}

// AddShard must move exactly the consistent-hash delta: every object
// sits on its (new) replica set afterwards, nothing is lost, and the
// replica-copy total stays Replication * objects.
func TestAddRemoveShardRebalance(t *testing.T) {
	topo, err := netsim.NewTopology(netsim.DefaultLAN().WithBandwidth(20), netsim.DefaultLAN())
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, 3, 2, Options{Topology: topo})
	objs := corpus(t, 60)
	uploadAll(t, c, objs)

	st, err := c.AddShard("shard99")
	if err != nil {
		t.Fatal(err)
	}
	if st.MovedObjects == 0 || st.DroppedObjects == 0 {
		t.Fatalf("add rebalance moved %d dropped %d, want both > 0", st.MovedObjects, st.DroppedObjects)
	}
	if st.MovedObjects > len(objs) {
		t.Fatalf("moved %d objects, more than the %d that exist", st.MovedObjects, len(objs))
	}
	verifyPlacement(t, c, objs)

	// The moved bytes are priced through the topology.
	if ws := topo.WANStats(); ws.Bytes == 0 {
		t.Fatal("rebalance moved bytes but priced nothing through the topology")
	}

	// Removing the new member moves its holdings back out.
	st, err = c.RemoveShard("shard99")
	if err != nil {
		t.Fatal(err)
	}
	if st.MovedObjects == 0 {
		t.Fatal("remove rebalance moved nothing")
	}
	verifyPlacement(t, c, objs)

	if _, err := c.RemoveShard("shard99"); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("double remove err = %v", err)
	}
	// Removal may not leave fewer members than the replication factor.
	_, _ = c.RemoveShard(c.Shards()[0])
	if _, err := c.RemoveShard(c.Shards()[0]); !errors.Is(err, ErrBadReplication) {
		t.Fatalf("removing below replication err = %v", err)
	}
}

// verifyPlacement asserts physical placement equals ring placement for
// every object: present on all its replicas, absent elsewhere, and
// readable through the router.
func verifyPlacement(t *testing.T, c *Cluster, objs map[hashing.Fingerprint][]byte) {
	t.Helper()
	copies := 0
	for fp, data := range objs {
		want := map[string]bool{}
		for _, id := range c.Replicas(fp) {
			want[id] = true
		}
		for _, id := range c.Shards() {
			ok, err := c.ShardQueryBatch(id, []hashing.Fingerprint{fp})
			if err != nil {
				t.Fatal(err)
			}
			if ok[0] != want[id] {
				t.Fatalf("shard %s holds %s = %v, ring says %v", id, fp, ok[0], want[id])
			}
			if ok[0] {
				copies++
			}
		}
		got, _, err := c.Download(fp)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("Download(%s) after rebalance: %v", fp, err)
		}
	}
	if want := c.Replication() * len(objs); copies != want {
		t.Fatalf("%d replica copies across tier, want %d", copies, want)
	}
}

// Seed migrates a single-node pool into the tier under ring placement.
func TestSeedFromRegistry(t *testing.T) {
	src := gearregistry.New(gearregistry.Options{Compress: true})
	objs := corpus(t, 25)
	uploadAll(t, src, objs)

	c := newCluster(t, 4, 2, Options{Compress: true})
	n, err := c.Seed(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(objs) {
		t.Fatalf("seeded %d objects, want %d", n, len(objs))
	}
	verifyPlacement(t, c, objs)
}

// The tier's telemetry must reconcile: per-shard gauges equal each
// shard's pool stats, and the summed Stats equal the gauges.
func TestTelemetryReconciles(t *testing.T) {
	tele := telemetry.NewRegistry()
	c := newCluster(t, 3, 2, Options{Telemetry: tele})
	objs := corpus(t, 30)
	uploadAll(t, c, objs)

	snap := tele.Snapshot()
	st := c.Stats()
	var gaugeObjects, gaugeBytes int64
	for _, ss := range st.Shards {
		o, ok := snap.Gauges["shardreg.shard."+ss.ID+".objects"]
		if !ok || o != int64(ss.Objects) {
			t.Fatalf("gauge objects for %s = %d (ok %v), stats say %d", ss.ID, o, ok, ss.Objects)
		}
		b := snap.Gauges["shardreg.shard."+ss.ID+".bytes"]
		if b != ss.StoredBytes {
			t.Fatalf("gauge bytes for %s = %d, stats say %d", ss.ID, b, ss.StoredBytes)
		}
		gaugeObjects += o
		gaugeBytes += b
	}
	if gaugeObjects != int64(st.Objects) || gaugeBytes != st.StoredBytes {
		t.Fatalf("gauge totals %d/%d, stats totals %d/%d", gaugeObjects, gaugeBytes, st.Objects, st.StoredBytes)
	}
	if snap.Gauges["shardreg.shards"] != 3 || snap.Gauges["shardreg.replication"] != 2 {
		t.Fatalf("membership gauges wrong: %v", snap.Gauges)
	}
	if snap.Counters["shardreg.upload.requests"] != int64(len(objs)) {
		t.Fatalf("upload counter = %d, want %d", snap.Counters["shardreg.upload.requests"], len(objs))
	}
}

func TestShardAddressedUnknown(t *testing.T) {
	c := newCluster(t, 2, 1, Options{})
	fp := hashing.FingerprintBytes([]byte("x"))
	if _, err := c.ShardQueryBatch("ghost", []hashing.Fingerprint{fp}); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("unknown shard query err = %v", err)
	}
	if _, _, err := c.ShardDownloadBatch("ghost", []hashing.Fingerprint{fp}); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("unknown shard download err = %v", err)
	}
	if err := c.KillShard("ghost"); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("kill unknown err = %v", err)
	}
}
