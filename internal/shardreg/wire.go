package shardreg

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
)

// Shard-routing wire protocol. A routing client that has resolved a
// fingerprint batch against the ring addresses each sub-batch at a
// specific shard; the framing carries that address so a tier front-end
// can dispatch without re-hashing:
//
//	request:  "gear-shard <shard-id> <verb> <n>\n" + n fingerprint lines
//	query:    "gear-shard <shard-id> query <n>\n" + "<fp> present|absent\n" lines
//	download: "gear-shard <shard-id> download <n>\n" +
//	          n frames of "<fp> <len> raw\n" + len payload bytes
//
// The header echo (shard id, verb, count) lets clients detect routing
// mix-ups; payload frames mirror the gearregistry batch framing, always
// uncompressed ("raw") because the router re-serves decompressed
// payloads. Over HTTP (NewHandler): POST /shard, with routing to an
// unknown shard mapped to 404, a killed shard to 503, and malformed
// framing to 400.

// Wire verbs.
const (
	VerbQuery    = "query"
	VerbDownload = "download"
)

const wireMagic = "gear-shard"

// maxWireBatch bounds the declared count in a frame header, so a hostile
// header cannot drive allocation.
const maxWireBatch = 1 << 20

// ErrBadFrame reports shard-routing framing that does not parse.
var ErrBadFrame = errors.New("malformed shard frame")

// RoutedRequest is one shard-addressed sub-batch.
type RoutedRequest struct {
	Shard string
	Verb  string // VerbQuery or VerbDownload
	Fps   []hashing.Fingerprint
}

// EncodeRoutedRequest frames a shard-addressed batch request.
func EncodeRoutedRequest(req RoutedRequest) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %s %s %d\n", wireMagic, req.Shard, req.Verb, len(req.Fps))
	for _, fp := range req.Fps {
		buf.WriteString(string(fp))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// splitExact splits a frame line on single spaces, requiring exactly n
// non-empty fields — the framing is canonical, so runs of whitespace
// (or tabs) are rejected rather than tolerated.
func splitExact(line string, n int) ([]string, bool) {
	fields := strings.Split(line, " ")
	if len(fields) != n {
		return nil, false
	}
	for _, f := range fields {
		if f == "" {
			return nil, false
		}
	}
	return fields, true
}

// parseHeader consumes the "gear-shard <shard-id> <verb> <n>\n" line.
func parseHeader(data []byte) (shard, verb string, n int, rest []byte, err error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return "", "", 0, nil, fmt.Errorf("shardreg: missing header: %w", ErrBadFrame)
	}
	fields, ok := splitExact(string(data[:nl]), 4)
	if !ok || fields[0] != wireMagic {
		return "", "", 0, nil, fmt.Errorf("shardreg: bad header %q: %w", string(data[:nl]), ErrBadFrame)
	}
	shard, verb = fields[1], fields[2]
	if err := validateShardID(shard); err != nil {
		return "", "", 0, nil, fmt.Errorf("%w: %w", err, ErrBadFrame)
	}
	if verb != VerbQuery && verb != VerbDownload {
		return "", "", 0, nil, fmt.Errorf("shardreg: bad verb %q: %w", verb, ErrBadFrame)
	}
	n, aerr := strconv.Atoi(fields[3])
	// The count must be canonical decimal ("+1", "01" are rejected) so
	// accepted frames re-encode byte-identically.
	if aerr != nil || n < 0 || n > maxWireBatch || strconv.Itoa(n) != fields[3] {
		return "", "", 0, nil, fmt.Errorf("shardreg: bad count %q: %w", fields[3], ErrBadFrame)
	}
	return shard, verb, n, data[nl+1:], nil
}

// sizedCap clamps a declared count to what the remaining bytes could
// plausibly hold (every entry costs at least two bytes), so
// preallocation stays proportional to the actual input.
func sizedCap(n int, rest []byte) int {
	if max := len(rest)/2 + 1; n > max {
		return max
	}
	return n
}

// ParseRoutedRequest decodes a shard-addressed batch request. Exactly
// the declared count of well-formed fingerprint lines must follow the
// header, with no trailing bytes.
func ParseRoutedRequest(data []byte) (RoutedRequest, error) {
	shard, verb, n, rest, err := parseHeader(data)
	if err != nil {
		return RoutedRequest{}, err
	}
	req := RoutedRequest{Shard: shard, Verb: verb, Fps: make([]hashing.Fingerprint, 0, sizedCap(n, rest))}
	for i := 0; i < n; i++ {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return RoutedRequest{}, fmt.Errorf("shardreg: %d of %d fingerprints: %w", i, n, ErrBadFrame)
		}
		fp := hashing.Fingerprint(rest[:nl])
		if err := fp.Validate(); err != nil {
			return RoutedRequest{}, fmt.Errorf("shardreg: %w: %w", err, ErrBadFrame)
		}
		req.Fps = append(req.Fps, fp)
		rest = rest[nl+1:]
	}
	if len(rest) != 0 {
		return RoutedRequest{}, fmt.Errorf("shardreg: %d trailing bytes: %w", len(rest), ErrBadFrame)
	}
	return req, nil
}

// EncodeQueryResponse frames a shard's presence verdicts.
func EncodeQueryResponse(shard string, fps []hashing.Fingerprint, present []bool) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %s %s %d\n", wireMagic, shard, VerbQuery, len(fps))
	for i, fp := range fps {
		verdict := "absent"
		if i < len(present) && present[i] {
			verdict = "present"
		}
		fmt.Fprintf(&buf, "%s %s\n", fp, verdict)
	}
	return buf.Bytes()
}

// ParseQueryResponse decodes a shard query response, returning the
// answering shard and the verdicts in request order.
func ParseQueryResponse(data []byte) (shard string, fps []hashing.Fingerprint, present []bool, err error) {
	shard, verb, n, rest, err := parseHeader(data)
	if err != nil {
		return "", nil, nil, err
	}
	if verb != VerbQuery {
		return "", nil, nil, fmt.Errorf("shardreg: verb %q in query response: %w", verb, ErrBadFrame)
	}
	fps = make([]hashing.Fingerprint, 0, sizedCap(n, rest))
	present = make([]bool, 0, sizedCap(n, rest))
	for i := 0; i < n; i++ {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return "", nil, nil, fmt.Errorf("shardreg: %d of %d verdicts: %w", i, n, ErrBadFrame)
		}
		line := string(rest[:nl])
		rest = rest[nl+1:]
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", nil, nil, fmt.Errorf("shardreg: verdict line %q: %w", line, ErrBadFrame)
		}
		fp := hashing.Fingerprint(line[:sp])
		if err := fp.Validate(); err != nil {
			return "", nil, nil, fmt.Errorf("shardreg: %w: %w", err, ErrBadFrame)
		}
		switch line[sp+1:] {
		case "present":
			present = append(present, true)
		case "absent":
			present = append(present, false)
		default:
			return "", nil, nil, fmt.Errorf("shardreg: verdict %q: %w", line[sp+1:], ErrBadFrame)
		}
		fps = append(fps, fp)
	}
	if len(rest) != 0 {
		return "", nil, nil, fmt.Errorf("shardreg: %d trailing bytes: %w", len(rest), ErrBadFrame)
	}
	return shard, fps, present, nil
}

// EncodeDownloadResponse frames a shard's served payloads, mirroring
// the gearregistry batch framing (always raw: the router serves
// decompressed payloads).
func EncodeDownloadResponse(shard string, fps []hashing.Fingerprint, payloads [][]byte) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %s %s %d\n", wireMagic, shard, VerbDownload, len(fps))
	for i, fp := range fps {
		var p []byte
		if i < len(payloads) {
			p = payloads[i]
		}
		fmt.Fprintf(&buf, "%s %d raw\n", fp, len(p))
		buf.Write(p)
	}
	return buf.Bytes()
}

// ParseDownloadResponse decodes a shard download response: the
// answering shard plus payloads in request order. Frames must account
// for every byte — a declared length past the end of input, a frame
// encoding other than "raw", or trailing bytes all fail.
func ParseDownloadResponse(data []byte) (shard string, fps []hashing.Fingerprint, payloads [][]byte, err error) {
	shard, verb, n, rest, err := parseHeader(data)
	if err != nil {
		return "", nil, nil, err
	}
	if verb != VerbDownload {
		return "", nil, nil, fmt.Errorf("shardreg: verb %q in download response: %w", verb, ErrBadFrame)
	}
	fps = make([]hashing.Fingerprint, 0, sizedCap(n, rest))
	payloads = make([][]byte, 0, sizedCap(n, rest))
	for i := 0; i < n; i++ {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return "", nil, nil, fmt.Errorf("shardreg: %d of %d frames: %w", i, n, ErrBadFrame)
		}
		fields, ok := splitExact(string(rest[:nl]), 3)
		if !ok || fields[2] != "raw" {
			return "", nil, nil, fmt.Errorf("shardreg: frame header %q: %w", string(rest[:nl]), ErrBadFrame)
		}
		fp := hashing.Fingerprint(fields[0])
		if err := fp.Validate(); err != nil {
			return "", nil, nil, fmt.Errorf("shardreg: %w: %w", err, ErrBadFrame)
		}
		size, aerr := strconv.Atoi(fields[1])
		rest = rest[nl+1:]
		if aerr != nil || size < 0 || size > len(rest) {
			return "", nil, nil, fmt.Errorf("shardreg: frame length %q: %w", fields[1], ErrBadFrame)
		}
		payload := make([]byte, size)
		copy(payload, rest[:size])
		rest = rest[size:]
		fps = append(fps, fp)
		payloads = append(payloads, payload)
	}
	if len(rest) != 0 {
		return "", nil, nil, fmt.Errorf("shardreg: %d trailing bytes: %w", len(rest), ErrBadFrame)
	}
	return shard, fps, payloads, nil
}

// Handler serves shard-addressed batches over HTTP:
//
//	POST /shard  <- routed request frame
//	             -> query or download response frame
//
// Routing errors map onto status codes: unknown/removed shard 404
// (ErrUnknownShard), killed shard 503 (ErrShardDown), malformed framing
// or fingerprints 400, object missing on the addressed shard 404.
type Handler struct {
	c *Cluster
}

var _ http.Handler = (*Handler)(nil)

// NewHandler wraps a cluster.
func NewHandler(c *Cluster) *Handler { return &Handler{c: c} }

// maxWireBody bounds a request body read.
const maxWireBody = 64 << 20

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/shard" {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxWireBody))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := ParseRoutedRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch req.Verb {
	case VerbQuery:
		present, err := h.c.ShardQueryBatch(req.Shard, req.Fps)
		if err != nil {
			http.Error(w, err.Error(), routeStatus(err))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(EncodeQueryResponse(req.Shard, req.Fps, present))
	case VerbDownload:
		payloads, _, err := h.c.ShardDownloadBatch(req.Shard, req.Fps)
		if err != nil {
			http.Error(w, err.Error(), routeStatus(err))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(EncodeDownloadResponse(req.Shard, req.Fps, payloads))
	}
}

// routeStatus maps routing and serve errors onto HTTP status codes.
func routeStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownShard), errors.Is(err, gearregistry.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrShardDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, hashing.ErrMalformed), errors.Is(err, ErrBadFrame):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}
