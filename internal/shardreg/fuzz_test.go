package shardreg

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/gear-image/gear/internal/hashing"
)

// FuzzParseRoutedRequest: the request parser must never panic and must
// only accept frames whose shard id, verb, and every fingerprint are
// well-formed with the declared count accounting for all input.
func FuzzParseRoutedRequest(f *testing.F) {
	known := hashing.FingerprintBytes([]byte("known object"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add(EncodeRoutedRequest(RoutedRequest{Shard: "shard00", Verb: VerbQuery, Fps: []hashing.Fingerprint{known}}))
	f.Add(EncodeRoutedRequest(RoutedRequest{Shard: "shard00", Verb: VerbDownload, Fps: []hashing.Fingerprint{known, known}})) // duplicates
	f.Add([]byte("gear-shard shard00 query 1\nd41d8cd98f00b204e9800998ecf8427e\n"))                                           // unknown but well-formed
	f.Add([]byte("gear-shard shard00 query 1\nzzzz\n"))                                                                       // malformed fingerprint
	f.Add([]byte("gear-shard shard00 query 2\n" + string(known) + "\n"))                                                      // count overruns input
	f.Add([]byte("gear-shard shard00 download 1\nd41d8cd98f00b204e9800998ecf8427e-c2\n"))                                     // collision id form
	f.Add([]byte("gear-shard shard00 query 1\n" + string(known) + " present\n"))                                              // response-shaped input
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRoutedRequest(data)
		if err != nil {
			return
		}
		if err := validateShardID(req.Shard); err != nil {
			t.Fatalf("accepted invalid shard id %q", req.Shard)
		}
		if req.Verb != VerbQuery && req.Verb != VerbDownload {
			t.Fatalf("accepted invalid verb %q", req.Verb)
		}
		for _, fp := range req.Fps {
			if err := fp.Validate(); err != nil {
				t.Fatalf("accepted invalid fingerprint %q", fp)
			}
		}
		// Accepted frames must re-encode to the same bytes: the framing
		// is canonical.
		if !bytes.Equal(EncodeRoutedRequest(req), data) {
			t.Fatalf("accepted non-canonical frame %q", data)
		}
	})
}

// FuzzParseQueryResponse: the verdict parser must never panic and must
// only accept well-formed fingerprint/verdict lines under a matching
// header.
func FuzzParseQueryResponse(f *testing.F) {
	known := hashing.FingerprintBytes([]byte("known object"))
	f.Add([]byte(""))
	f.Add(EncodeQueryResponse("shard00", []hashing.Fingerprint{known}, []bool{true}))
	f.Add(EncodeQueryResponse("shard00", []hashing.Fingerprint{known, known}, []bool{true, false}))
	f.Add([]byte("gear-shard shard00 query 1\nd41d8cd98f00b204e9800998ecf8427e maybe\n")) // bad verdict
	f.Add([]byte("gear-shard shard00 query 1\nzzzz present\n"))                           // malformed fingerprint
	f.Add([]byte("gear-shard shard00 download 1\n" + string(known) + " present\n"))       // wrong verb
	f.Add([]byte("gear-shard shard00 query 1\nno verdict\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, fps, present, err := ParseQueryResponse(data)
		if err != nil {
			return
		}
		if len(fps) != len(present) {
			t.Fatalf("%d fingerprints for %d verdicts", len(fps), len(present))
		}
		for _, fp := range fps {
			if err := fp.Validate(); err != nil {
				t.Fatalf("accepted invalid fingerprint %q", fp)
			}
		}
	})
}

// FuzzParseDownloadResponse: the frame parser must never panic, must
// only accept frames whose payload lengths are consistent, and may
// never parse more payload bytes than the input holds.
func FuzzParseDownloadResponse(f *testing.F) {
	known := hashing.FingerprintBytes([]byte("known object"))
	f.Add([]byte(""))
	f.Add(EncodeDownloadResponse("shard00", []hashing.Fingerprint{known}, [][]byte{[]byte("hello")}))
	f.Add(EncodeDownloadResponse("shard00", []hashing.Fingerprint{known}, [][]byte{{}}))
	f.Add([]byte("gear-shard shard00 download 1\n" + string(known) + " 99 raw\nshort")) // length overruns input
	f.Add([]byte("gear-shard shard00 download 1\n" + string(known) + " 5 gzip\nhello")) // unsupported encoding
	f.Add([]byte("gear-shard shard00 download 1\nzzzz 5 raw\nhello"))                   // malformed fingerprint
	f.Add([]byte("gear-shard shard00 query 1\n" + string(known) + " 5 raw\nhello"))     // wrong verb
	f.Fuzz(func(t *testing.T, data []byte) {
		_, fps, payloads, err := ParseDownloadResponse(data)
		if err != nil {
			return
		}
		if len(fps) != len(payloads) {
			t.Fatalf("%d fingerprints for %d payloads", len(fps), len(payloads))
		}
		var total int
		for i, fp := range fps {
			if err := fp.Validate(); err != nil {
				t.Fatalf("accepted invalid fingerprint %q", fp)
			}
			total += len(payloads[i])
		}
		if total > len(data) {
			t.Fatalf("parsed %d payload bytes from %d input bytes", total, len(data))
		}
	})
}

// FuzzShardHandler: the /shard front-end must never panic on arbitrary
// bodies, every 200 query response must parse and agree with the
// addressed shard's state, and every 200 download response must serve
// only objects the tier holds.
func FuzzShardHandler(f *testing.F) {
	c, err := New(Options{Shards: []string{"shard00", "shard01"}, Replication: 2})
	if err != nil {
		f.Fatal(err)
	}
	known := hashing.FingerprintBytes([]byte("known object"))
	if err := c.Upload(known, []byte("known object")); err != nil {
		f.Fatal(err)
	}

	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add(EncodeRoutedRequest(RoutedRequest{Shard: "shard00", Verb: VerbQuery, Fps: []hashing.Fingerprint{known}}))
	f.Add(EncodeRoutedRequest(RoutedRequest{Shard: "shard01", Verb: VerbDownload, Fps: []hashing.Fingerprint{known, known}}))
	f.Add(EncodeRoutedRequest(RoutedRequest{Shard: "ghost", Verb: VerbQuery, Fps: []hashing.Fingerprint{known}}))
	f.Add([]byte("gear-shard shard00 query 1\nd41d8cd98f00b204e9800998ecf8427e\n"))       // unknown but well-formed
	f.Add([]byte("gear-shard shard00 query 1\nzzzz\n"))                                   // malformed
	f.Add([]byte("gear-shard shard00 download 1\nd41d8cd98f00b204e9800998ecf8427e-c2\n")) // collision id form
	f.Add([]byte("gear-shard shard00 query 1\n" + string(known) + " present\n"))          // response-shaped input

	h := NewHandler(c)
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/shard", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		switch rec.Code {
		case http.StatusOK:
			routed, err := ParseRoutedRequest(body)
			if err != nil {
				t.Fatalf("200 for a request that does not parse: %v", err)
			}
			switch routed.Verb {
			case VerbQuery:
				shard, fps, present, err := ParseQueryResponse(rec.Body.Bytes())
				if err != nil {
					t.Fatalf("200 query response does not parse: %v", err)
				}
				if shard != routed.Shard || len(fps) != len(routed.Fps) {
					t.Fatalf("response echoes %q/%d, request was %q/%d", shard, len(fps), routed.Shard, len(routed.Fps))
				}
				for i, fp := range fps {
					got, err := c.ShardQueryBatch(routed.Shard, []hashing.Fingerprint{fp})
					if err != nil {
						t.Fatalf("verdict for unqueryable %q: %v", fp, err)
					}
					if got[0] != present[i] {
						t.Fatalf("verdict for %s = %v, shard says %v", fp, present[i], got[0])
					}
				}
			case VerbDownload:
				_, fps, payloads, err := ParseDownloadResponse(rec.Body.Bytes())
				if err != nil {
					t.Fatalf("200 download response does not parse: %v", err)
				}
				for i, fp := range fps {
					present, err := c.Query(fp)
					if err != nil || !present {
						t.Fatalf("served object %s the tier does not hold", fp)
					}
					if hashing.FingerprintBytes(payloads[i]) != fp && len(fp) == 32 {
						t.Fatalf("served corrupted payload for %s", fp)
					}
				}
			}
		case http.StatusBadRequest, http.StatusNotFound, http.StatusServiceUnavailable:
			// Rejected routes are fine; the handler just must not panic
			// or answer a partial batch.
		default:
			t.Fatalf("unexpected status %d", rec.Code)
		}
	})
}
