package shardreg

import (
	"sort"
	"strconv"

	"github.com/gear-image/gear/internal/hashing"
)

// Ring is the consistent-hash placement function of the shard tier.
// Every shard contributes vnodes points on a 64-bit hash circle;
// a fingerprint lands on the first point clockwise of its own hash, and
// its replicas on the next points owned by distinct shards. Virtual
// nodes smooth the arc ownership so load splits near-evenly even at
// small shard counts, and membership changes move only the arcs the
// joining/leaving shard owns — the consistent-hash delta.
//
// Placement is a pure function of (member set, vnodes): two rings built
// from the same members agree on every lookup, which is what lets a
// routing client and a rebalancer reason about the same placement
// without coordination.
type Ring struct {
	vnodes int
	// points is the circle, sorted by hash. Ties are broken by shard id
	// so the ring is deterministic even across hash collisions.
	points []ringPoint
	shards []string // sorted member ids
}

type ringPoint struct {
	hash  uint64
	shard string
}

// NewRing returns an empty ring with the given virtual-node count per
// shard (values < 1 get DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes}
}

// hash64 is finalized FNV-1a, the ring's point and key hash. Raw FNV-1a
// is unusable as a circle position: a trailing-byte difference only
// reaches the high bits through the final multiply, so inputs that
// differ in their last few characters — exactly the shape of virtual
// node labels "shard#0".."shard#63" — land within ~2^48 of each other
// and a shard's vnodes collapse into a handful of clumps. The mix
// (murmur3's 64-bit finalizer) avalanches every input bit across the
// word, which is what actually spreads the points.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

// mix64 is the murmur3 64-bit finalizer: a bijective avalanche, so it
// cannot introduce collisions, only spread them.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// pointHash is the circle position of shard's v-th virtual node.
func pointHash(shard string, v int) uint64 {
	return hash64(shard + "#" + strconv.Itoa(v))
}

// Add inserts a shard's virtual nodes. Adding a member twice is a no-op.
func (r *Ring) Add(shard string) {
	if r.Has(shard) {
		return
	}
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: pointHash(shard, v), shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	r.shards = append(r.shards, shard)
	sort.Strings(r.shards)
}

// Remove drops a shard's virtual nodes, reporting whether it was a
// member.
func (r *Ring) Remove(shard string) bool {
	if !r.Has(shard) {
		return false
	}
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
	for i, s := range r.shards {
		if s == shard {
			r.shards = append(r.shards[:i], r.shards[i+1:]...)
			break
		}
	}
	return true
}

// Has reports ring membership.
func (r *Ring) Has(shard string) bool {
	i := sort.SearchStrings(r.shards, shard)
	return i < len(r.shards) && r.shards[i] == shard
}

// Shards lists members in sorted order.
func (r *Ring) Shards() []string {
	out := make([]string, len(r.shards))
	copy(out, r.shards)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.shards) }

// Lookup returns the n distinct shards responsible for fp, in replica
// order: the shard owning the first point clockwise of the key is the
// primary, and each further distinct shard encountered walking the
// circle is the next replica. n is clamped to the member count; an empty
// ring returns nil.
func (r *Ring) Lookup(fp hashing.Fingerprint, n int) []string {
	if len(r.shards) == 0 || n < 1 {
		return nil
	}
	if n > len(r.shards) {
		n = len(r.shards)
	}
	key := hash64(string(fp))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		out = append(out, p.shard)
	}
	return out
}

// OwnedShare returns each shard's fraction of the hash circle (primary
// ownership only) — the balance the virtual nodes buy. Shares sum to 1.
func (r *Ring) OwnedShare() map[string]float64 {
	out := make(map[string]float64, len(r.shards))
	if len(r.points) == 0 {
		return out
	}
	if len(r.points) == 1 {
		out[r.points[0].shard] = 1
		return out
	}
	// The arc ending at point i belongs to point i's shard; uint64
	// subtraction wraps, which is exactly the circle's modular distance.
	const whole = float64(1<<63) * 2 // 2^64
	prev := r.points[len(r.points)-1].hash
	for _, p := range r.points {
		out[p.shard] += float64(p.hash-prev) / whole
		prev = p.hash
	}
	return out
}
