package shardreg

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/netsim"
)

// sortedFps returns the corpus fingerprints in sorted order, so read
// sequences (and therefore jitter streams) are reproducible.
func sortedFps(objs map[hashing.Fingerprint][]byte) []hashing.Fingerprint {
	fps := make([]hashing.Fingerprint, 0, len(objs))
	for fp := range objs {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	return fps
}

// With the zero ReadOptions the read path must degenerate exactly to
// rank-order serving with one Transfer per download: same serving shard
// as the ring's primary, and per-node link stats bit-identical to a
// reference replay that prices each read with a plain Transfer on the
// primary's link.
func TestReadDegeneratesToRankOrder(t *testing.T) {
	wan := netsim.DefaultLAN().WithBandwidth(100)
	lan := netsim.DefaultLAN()
	topo, err := netsim.NewTopology(wan, lan)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := netsim.NewTopology(wan, lan)
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, 4, 2, Options{Topology: topo})
	objs := corpus(t, 50)
	uploadAll(t, c, objs)

	// Snapshot post-upload so only the read pass is compared.
	base := map[string]netsim.Stats{}
	for _, id := range c.Shards() {
		base[id] = topo.Node(id).WAN.Stats()
		// Mirror the upload-phase traffic into the reference.
		ref.Node(id)
	}

	for _, fp := range sortedFps(objs) {
		payload, wire, cost, err := c.DownloadTimed(fp)
		if err != nil {
			t.Fatal(err)
		}
		if len(payload) == 0 || wire <= 0 || cost <= 0 {
			t.Fatalf("DownloadTimed(%s) = %d bytes, wire %d, cost %v", fp, len(payload), wire, cost)
		}
		primary := c.Replicas(fp)[0]
		want := ref.Node(primary).WAN.Transfer(wire)
		if cost != want {
			t.Fatalf("download %s cost %v, want rank-order Transfer cost %v", fp, cost, want)
		}
	}
	for _, id := range c.Shards() {
		got := topo.Node(id).WAN.Stats().Sub(base[id])
		want := ref.Node(id).WAN.Stats()
		if got != want {
			t.Fatalf("shard %s read-pass link stats %+v, want reference %+v", id, got, want)
		}
	}
	st := c.Stats()
	if st.BalancedReads != 0 || st.HedgesFired != 0 || st.HedgeWasteBytes != 0 {
		t.Fatalf("zero ReadOptions still balanced/hedged: %+v", st)
	}
	if st.Reads != int64(len(objs)) {
		t.Fatalf("tier reads = %d, want %d", st.Reads, len(objs))
	}
}

// straggle slows the shard owning the most primaries by factor and
// returns its id.
func straggle(t *testing.T, c *Cluster, topo *netsim.Topology, factor float64) string {
	t.Helper()
	slow, best := "", -1
	for id, n := range c.PrimaryLoad() {
		if n > best || (n == best && id < slow) {
			slow, best = id, n
		}
	}
	if err := topo.SetServiceFactor(slow, factor); err != nil {
		t.Fatal(err)
	}
	return slow
}

// Power-of-two-choices must steer reads away from a 10x straggler once
// its EWMA warms, at exact client byte parity with the rank-order path.
func TestBalancedReadsAvoidStraggler(t *testing.T) {
	run := func(balance bool) (clientBytes int64, st Stats, slow string) {
		topo, err := netsim.NewTopology(netsim.DefaultLAN().WithBandwidth(100), netsim.DefaultLAN())
		if err != nil {
			t.Fatal(err)
		}
		c := newCluster(t, 4, 2, Options{Topology: topo, Read: ReadOptions{Balance: balance}})
		objs := corpus(t, 60)
		uploadAll(t, c, objs)
		slow = straggle(t, c, topo, 10)
		fps := sortedFps(objs)
		for round := 0; round < 8; round++ {
			for _, fp := range fps {
				_, wire, _, err := c.DownloadTimed(fp)
				if err != nil {
					t.Fatal(err)
				}
				clientBytes += wire
			}
		}
		return clientBytes, c.Stats(), slow
	}
	rankBytes, rankStats, slow := run(false)
	balBytes, balStats, _ := run(true)
	if balBytes != rankBytes {
		t.Fatalf("balanced client bytes %d != rank-order %d (parity broken)", balBytes, rankBytes)
	}
	if balStats.BalancedReads == 0 {
		t.Fatal("balancer never diverged from rank order despite a 10x straggler")
	}
	share := func(st Stats) float64 {
		for _, s := range st.Shards {
			if s.ID == slow {
				return s.ReadShare
			}
		}
		t.Fatalf("straggler %s missing from stats", slow)
		return 0
	}
	rankShare, balShare := share(rankStats), share(balStats)
	if balShare >= rankShare/2 {
		t.Fatalf("straggler read share %0.3f under balancing, want well below rank-order %0.3f", balShare, rankShare)
	}
}

// Hedging must fire against a straggler, win there, bound its extra
// egress under 5%% of client bytes, and keep every observed latency well
// under the straggler's un-hedged service time. Balancing is left off:
// with it on, p2c steers reads away from the straggler after its first
// slow response and the hedge (correctly) has nothing left to rescue —
// hedging is the insurance for reads that still land on a slow replica.
func TestHedgedReadsBoundTailAndWaste(t *testing.T) {
	topo, err := netsim.NewTopology(netsim.DefaultLAN().WithBandwidth(100), netsim.DefaultLAN())
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, 4, 2, Options{Topology: topo, Read: ReadOptions{Hedge: true}})
	objs := corpus(t, 60)
	uploadAll(t, c, objs)
	slow := straggle(t, c, topo, 10)
	fps := sortedFps(objs)

	var clientBytes int64
	var worst time.Duration
	for round := 0; round < 8; round++ {
		for _, fp := range fps {
			_, wire, cost, err := c.DownloadTimed(fp)
			if err != nil {
				t.Fatal(err)
			}
			clientBytes += wire
			if cost > worst {
				worst = cost
			}
		}
	}
	st := c.Stats()
	if st.HedgesFired == 0 || st.HedgesWon == 0 {
		t.Fatalf("straggler %s never triggered a winning hedge: %+v", slow, st)
	}
	if st.HedgeWasteBytes*20 >= clientBytes {
		t.Fatalf("hedge waste %d bytes >= 5%% of %d client bytes", st.HedgeWasteBytes, clientBytes)
	}
	// The straggler serves at ~10x a healthy shard; hedged tail latency
	// must stay well under that.
	healthy := topo.Node("zz-probe").WAN.TransferCost(4096)
	if worst >= 8*healthy {
		t.Fatalf("worst hedged latency %v, want < 8x healthy cost %v", worst, healthy)
	}
}

// Batch downloads hedge per shard partition: under a straggler the
// batch path must fire hedges too, with the same waste bound, and
// payloads/wire must stay identical to the un-hedged batch.
func TestHedgedBatchDownloads(t *testing.T) {
	mk := func(hedge bool) (*Cluster, map[hashing.Fingerprint][]byte) {
		topo, err := netsim.NewTopology(netsim.DefaultLAN().WithBandwidth(100), netsim.DefaultLAN())
		if err != nil {
			t.Fatal(err)
		}
		c := newCluster(t, 4, 2, Options{Topology: topo,
			Read: ReadOptions{Balance: hedge, Hedge: hedge, HedgeDelay: time.Millisecond}})
		objs := corpus(t, 40)
		uploadAll(t, c, objs)
		straggle(t, c, topo, 10)
		return c, objs
	}
	plain, objs := mk(false)
	hedged, _ := mk(true)
	fps := sortedFps(objs)
	var wantWire, gotWire int64
	for round := 0; round < 4; round++ {
		wantPs, w1, err := plain.DownloadBatch(fps)
		if err != nil {
			t.Fatal(err)
		}
		gotPs, w2, err := hedged.DownloadBatch(fps)
		if err != nil {
			t.Fatal(err)
		}
		wantWire += w1
		gotWire += w2
		for i := range wantPs {
			if string(wantPs[i]) != string(gotPs[i]) {
				t.Fatalf("round %d: payload %d differs under hedging", round, i)
			}
		}
	}
	if gotWire != wantWire {
		t.Fatalf("hedged batch wire %d != plain %d (parity broken)", gotWire, wantWire)
	}
	st := hedged.Stats()
	if st.HedgesFired == 0 {
		t.Fatal("batch path never hedged despite a 10x straggler and a 1ms delay")
	}
	if st.HedgeWasteBytes*20 >= gotWire {
		t.Fatalf("batch hedge waste %d bytes >= 5%% of %d client bytes", st.HedgeWasteBytes, gotWire)
	}
}

// Routed reads must be safe to run concurrently with membership churn;
// run with -race. Downloads may transiently fail while placement moves
// under them, but must never corrupt a payload they do return.
func TestReadsConcurrentWithMembership(t *testing.T) {
	c := newCluster(t, 4, 2, Options{Read: ReadOptions{Balance: true, Hedge: true}})
	objs := corpus(t, 30)
	uploadAll(t, c, objs)
	fps := sortedFps(objs)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fp := fps[(g+i)%len(fps)]
				if payload, _, err := c.Download(fp); err == nil {
					if string(payload) != string(objs[fp]) {
						t.Errorf("corrupt payload for %s", fp)
						return
					}
				}
				_, _ = c.Query(fp)
				_, _, _ = c.DownloadBatch(fps[:3])
				_ = c.replicaChain(fp)
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.AddShard("churn"); err != nil {
			t.Error(err)
			break
		}
		if _, err := c.RemoveShard("churn"); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	verifyPlacement(t, c, objs)
}

// The failovers counter must tick for every dead replica skipped by
// Query and Download — and must NOT tick when a live replica merely
// reports not-found.
func TestFailoverCounterTelemetry(t *testing.T) {
	c := newCluster(t, 3, 2, Options{})
	objs := corpus(t, 20)
	uploadAll(t, c, objs)
	fp := sortedFps(objs)[0]
	primary := c.Replicas(fp)[0]
	failovers := c.Telemetry().Counter("shardreg.failovers")

	before := failovers.Value()
	if err := c.KillShard(primary); err != nil {
		t.Fatal(err)
	}
	if present, err := c.Query(fp); err != nil || !present {
		t.Fatalf("Query past dead primary = %v, %v", present, err)
	}
	if got := failovers.Value(); got != before+1 {
		t.Fatalf("failovers after query = %d, want %d", got, before+1)
	}
	if _, _, err := c.Download(fp); err != nil {
		t.Fatal(err)
	}
	if got := failovers.Value(); got != before+2 {
		t.Fatalf("failovers after download = %d, want %d", got, before+2)
	}

	// Both replicas down: the typed error surfaces and each dead replica
	// is counted.
	backup := c.Replicas(fp)[1]
	if err := c.KillShard(backup); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Download(fp); !errors.Is(err, ErrShardDown) {
		t.Fatalf("all-replicas-down err = %v", err)
	}
	if got := failovers.Value(); got != before+4 {
		t.Fatalf("failovers after dead pair = %d, want %d", got, before+4)
	}

	// A clean miss fails over nothing.
	if err := c.ReviveShard(primary); err != nil {
		t.Fatal(err)
	}
	if err := c.ReviveShard(backup); err != nil {
		t.Fatal(err)
	}
	at := failovers.Value()
	missing := hashing.FingerprintBytes([]byte("never uploaded"))
	if _, _, err := c.Download(missing); !errors.Is(err, gearregistry.ErrNotFound) {
		t.Fatalf("miss err = %v", err)
	}
	if got := failovers.Value(); got != at {
		t.Fatalf("not-found ticked failovers: %d -> %d", at, got)
	}
}

// Per-shard read counters and shares must reconcile: shares sum to 1
// and every served read is attributed to exactly one shard.
func TestReadShareAccounting(t *testing.T) {
	c := newCluster(t, 4, 2, Options{Read: ReadOptions{Balance: true}})
	objs := corpus(t, 40)
	uploadAll(t, c, objs)
	for _, fp := range sortedFps(objs) {
		if _, _, err := c.Download(fp); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Reads != int64(len(objs)) {
		t.Fatalf("tier reads = %d, want %d", st.Reads, len(objs))
	}
	var share float64
	var reads int64
	for _, s := range st.Shards {
		share += s.ReadShare
		reads += s.Reads
	}
	if reads != st.Reads {
		t.Fatalf("per-shard reads sum %d != tier reads %d", reads, st.Reads)
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("read shares sum to %0.4f, want 1", share)
	}
}
