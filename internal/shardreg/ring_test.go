package shardreg

import (
	"fmt"
	"math"
	"testing"

	"github.com/gear-image/gear/internal/hashing"
)

func ringShards(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("shard%02d", i)
	}
	return out
}

func ringFps(n int) []hashing.Fingerprint {
	out := make([]hashing.Fingerprint, n)
	for i := range out {
		out[i] = hashing.FingerprintBytes([]byte(fmt.Sprintf("object %d", i)))
	}
	return out
}

// Placement must be a pure function of the member set: two rings built
// from the same members (in different insertion orders) agree on every
// lookup.
func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing(0)
	b := NewRing(0)
	for _, id := range ringShards(5) {
		a.Add(id)
	}
	for i := 4; i >= 0; i-- {
		b.Add(ringShards(5)[i])
	}
	for _, fp := range ringFps(200) {
		ga, gb := a.Lookup(fp, 3), b.Lookup(fp, 3)
		if len(ga) != 3 || len(gb) != 3 {
			t.Fatalf("Lookup(%s, 3) = %v / %v", fp, ga, gb)
		}
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("rings disagree on %s: %v vs %v", fp, ga, gb)
			}
		}
	}
}

func TestRingLookupDistinctReplicas(t *testing.T) {
	r := NewRing(0)
	for _, id := range ringShards(4) {
		r.Add(id)
	}
	for _, fp := range ringFps(100) {
		got := r.Lookup(fp, 3)
		seen := map[string]bool{}
		for _, id := range got {
			if seen[id] {
				t.Fatalf("Lookup(%s, 3) repeats shard %s: %v", fp, id, got)
			}
			seen[id] = true
		}
	}
	// n past the member count clamps.
	if got := r.Lookup(ringFps(1)[0], 99); len(got) != 4 {
		t.Fatalf("Lookup clamped to %d shards, want 4", len(got))
	}
}

func TestRingEmptyAndBadN(t *testing.T) {
	r := NewRing(0)
	fp := ringFps(1)[0]
	if got := r.Lookup(fp, 1); got != nil {
		t.Fatalf("empty ring Lookup = %v, want nil", got)
	}
	r.Add("only")
	if got := r.Lookup(fp, 0); got != nil {
		t.Fatalf("Lookup(n=0) = %v, want nil", got)
	}
}

func TestRingMembership(t *testing.T) {
	r := NewRing(0)
	r.Add("a")
	r.Add("b")
	r.Add("a") // duplicate add is a no-op
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if !r.Has("a") || r.Has("zzz") {
		t.Fatal("Has answers wrong")
	}
	if !r.Remove("a") || r.Remove("a") {
		t.Fatal("Remove verdicts wrong")
	}
	if got := r.Shards(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Shards = %v, want [b]", got)
	}
	if len(r.points) != r.vnodes {
		t.Fatalf("%d points after removal, want %d", len(r.points), r.vnodes)
	}
}

// Virtual nodes must keep primary ownership near-even: with the default
// point count no shard of 4 should own a grossly skewed hash-space
// share, and the shares must sum to 1.
func TestRingOwnedShareBalance(t *testing.T) {
	r := NewRing(0)
	for _, id := range ringShards(4) {
		r.Add(id)
	}
	share := r.OwnedShare()
	var sum float64
	for id, s := range share {
		sum += s
		if s < 0.10 || s > 0.45 {
			t.Errorf("shard %s owns %.3f of the circle, want near 0.25", id, s)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}

	single := NewRing(1)
	single.Add("only")
	if got := single.OwnedShare()["only"]; got != 1 {
		t.Fatalf("single-shard share = %v, want 1", got)
	}
}

// Adding one member to S must move only ~1/(S+1) of primaries — the
// consistent-hash delta, not a rehash-everything.
func TestRingMembershipDelta(t *testing.T) {
	r := NewRing(0)
	for _, id := range ringShards(4) {
		r.Add(id)
	}
	fps := ringFps(1000)
	before := make(map[hashing.Fingerprint]string, len(fps))
	for _, fp := range fps {
		before[fp] = r.Lookup(fp, 1)[0]
	}
	r.Add("shard04")
	moved := 0
	for _, fp := range fps {
		after := r.Lookup(fp, 1)[0]
		if after != before[fp] {
			if after != "shard04" {
				t.Fatalf("%s moved %s -> %s, but only the new shard may gain primaries", fp, before[fp], after)
			}
			moved++
		}
	}
	if moved == 0 || moved > 400 {
		t.Fatalf("adding 1 of 5 shards moved %d/1000 primaries, want ~200", moved)
	}
}
