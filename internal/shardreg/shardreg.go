// Package shardreg is the multi-node Gear Registry tier: fingerprints
// are placed on shards by consistent hashing (virtual nodes for
// balance), replicated to N shards, and served through a routing client
// that implements the same three-verb Store protocol — plus the batched
// QueryBatch/DownloadBatch forms — as a single gearregistry.Registry, so
// the store, push pipeline, and deployment daemons work against a
// sharded tier unchanged.
//
// The tier removes the single-registry ceiling the paper's evaluation
// assumes (EdgePier makes the same move for edge registries): each
// shard owns ~1/S of the object space, so registry-side egress and
// serve time per shard fall near-linearly with shard count, and N-way
// replication lets the router fail a batch over to the next replica
// when a shard dies. A 1-shard, 1-replica cluster degenerates exactly
// to a single registry: same routing (everything to the one shard),
// same stored bytes (deterministic gzip), same wire bytes.
//
// Membership changes rebalance by reconciling physical placement with
// the ring: only the consistent-hash delta moves (downloaded from a
// surviving replica, uploaded to the new owner, dropped from
// ex-replicas), and the moved bytes are priced through per-shard
// netsim.Topology links when a topology is attached.
package shardreg

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gear-image/gear/internal/clientopt"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/telemetry"
)

// DefaultVirtualNodes is the per-shard virtual-node count when Options
// leaves it zero: enough points that primary ownership stays within a
// few percent of even at single-digit shard counts.
const DefaultVirtualNodes = 64

// Errors returned by the shard tier.
var (
	// ErrNoShards reports a cluster configured (or asked to route) with
	// no shards at all.
	ErrNoShards = errors.New("cluster has no shards")
	// ErrUnknownShard reports routing to a shard id that is not (or no
	// longer) a cluster member.
	ErrUnknownShard = errors.New("unknown shard")
	// ErrShardDown reports an operation against a killed shard, or a
	// routed operation whose every replica was unavailable.
	ErrShardDown = errors.New("shard down")
	// ErrBadReplication reports a replication factor the member count
	// cannot satisfy.
	ErrBadReplication = errors.New("replication factor out of range")
	// ErrBadShardID reports a shard id the wire framing cannot carry.
	ErrBadShardID = errors.New("invalid shard id")
	// ErrDuplicateShard reports adding a shard id twice.
	ErrDuplicateShard = errors.New("duplicate shard")
)

// Options configures a Cluster.
type Options struct {
	// Shards are the initial member ids. At least one is required; ids
	// must satisfy the wire charset (letters, digits, '.', '_', '-').
	Shards []string
	// Replication is how many shards hold each object (default 1; must
	// not exceed the member count).
	Replication int
	// VirtualNodes is the per-shard ring point count (default
	// DefaultVirtualNodes).
	VirtualNodes int
	// Compress stores objects gzip-compressed on every shard, like a
	// single registry with Options.Compress.
	Compress bool
	// Retry, when non-zero, wraps every shard's store with the shared
	// clientopt retry policy (the same wrapper a flaky single-registry
	// client uses); replica failover sits above it, so a transient
	// shard error retries in place before the router moves on.
	Retry clientopt.Options
	// Telemetry, if set, is the registry the tier's shardreg.* metrics
	// publish into — per-shard object/byte gauges plus routing counters
	// — so fleet-wide snapshots reconcile the tier exactly. Nil gets a
	// private registry.
	Telemetry *telemetry.Registry
	// Topology, if set, attaches one node per shard and prices served
	// and rebalanced bytes through that shard's WAN link — the
	// registry-side cost model of the extshard experiment.
	Topology *netsim.Topology
	// Read tunes the download side: load-balanced replica selection and
	// hedged requests. The zero value reads in strict rank order, the
	// pre-hedging behavior.
	Read ReadOptions
}

// shardStore is what every shard backend must speak: the three verbs
// plus both batch forms. *gearregistry.Registry and *RetryStore both
// qualify.
type shardStore interface {
	gearregistry.Store
	gearregistry.BatchQuerier
	gearregistry.BatchDownloader
}

// shard is one cluster member: an in-process Gear registry behind the
// (optionally retry-wrapped) store interface, its topology links, and
// its liveness flag.
type shard struct {
	id    string
	reg   *gearregistry.Registry
	store shardStore
	links *netsim.NodeLinks
	down  atomic.Bool

	// ewma is the smoothed observed download latency in nanoseconds and
	// inflight the concurrent-read occupancy — together the load score
	// the power-of-two-choices balancer compares.
	ewma     atomic.Int64
	inflight atomic.Int64

	// objects/bytes are the per-shard telemetry views
	// (shardreg.shard.<id>.objects / .bytes), synced on every mutation;
	// reads/readBytes are the served-read counters behind the read-share
	// columns.
	objects   *telemetry.Gauge
	bytes     *telemetry.Gauge
	reads     *telemetry.Counter
	readBytes *telemetry.Counter
}

// downErr is the typed unavailability error for this shard.
func (s *shard) downErr() error {
	return fmt.Errorf("shardreg: shard %s: %w", s.id, ErrShardDown)
}

// charge prices wire bytes served by (or moved through) this shard on
// its WAN link, when a topology is attached.
func (s *shard) charge(n int, wire int64) {
	if s.links == nil {
		return
	}
	if n <= 1 {
		s.links.WAN.Transfer(wire)
	} else {
		s.links.WAN.TransferBatch(n, wire)
	}
}

// sync refreshes the shard's telemetry gauges from its pool stats.
func (s *shard) sync() {
	st := s.reg.Stats()
	s.objects.Set(int64(st.Objects))
	s.bytes.Set(st.StoredBytes)
}

// Cluster is the routing client over the shard tier. It implements
// gearregistry.Store, BatchQuerier, and BatchDownloader; batches fan
// out per shard and fail over per sub-batch to each fingerprint's next
// replica. Safe for concurrent use.
type Cluster struct {
	opts Options
	tele *telemetry.Registry

	mu     sync.RWMutex
	ring   *Ring
	shards map[string]*shard

	queries, uploads, downloads *telemetry.Counter
	ranges                      *telemetry.Counter
	failovers, degraded         *telemetry.Counter
	rebalObjects, rebalBytes    *telemetry.Counter
	shardsGauge, downGauge      *telemetry.Gauge
	replGauge                   *telemetry.Gauge

	// Read-path telemetry: balanced picks that diverged from rank order,
	// hedges fired/won, cancelled-loser egress, and the client-observed
	// download latency distribution.
	readBalanced *telemetry.Counter
	hedgeFired   *telemetry.Counter
	hedgeWon     *telemetry.Counter
	hedgeWaste   *telemetry.Counter
	latHist      *telemetry.Histogram

	// latMu guards the smoothed latency pair the adaptive hedge trigger
	// is derived from: srtt (per-request download latency) and srttPB
	// (per-byte latency, ns/byte). Together they model the expected cost
	// of a read of known size in both overhead- and wire-dominated
	// regimes, so big-but-healthy downloads don't trip the trigger.
	latMu  sync.Mutex
	srtt   time.Duration
	srttPB float64
}

var (
	_ gearregistry.Store           = (*Cluster)(nil)
	_ gearregistry.BatchQuerier    = (*Cluster)(nil)
	_ gearregistry.BatchDownloader = (*Cluster)(nil)
)

// validateShardID enforces the wire charset: the routed framing carries
// shard ids as a space-delimited header field.
func validateShardID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("shardreg: shard id %q: %w", id, ErrBadShardID)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("shardreg: shard id %q: %w", id, ErrBadShardID)
		}
	}
	return nil
}

// New returns a cluster with the given members. Every shard starts
// empty; use Seed to copy an existing registry's pool in under the
// ring's placement.
func New(opts Options) (*Cluster, error) {
	if len(opts.Shards) == 0 {
		return nil, fmt.Errorf("shardreg: %w", ErrNoShards)
	}
	if opts.Replication == 0 {
		opts.Replication = 1
	}
	if opts.Replication < 1 || opts.Replication > len(opts.Shards) {
		return nil, fmt.Errorf("shardreg: %d replicas across %d shards: %w",
			opts.Replication, len(opts.Shards), ErrBadReplication)
	}
	if opts.VirtualNodes < 1 {
		opts.VirtualNodes = DefaultVirtualNodes
	}
	tele := opts.Telemetry
	if tele == nil {
		tele = telemetry.NewRegistry()
	}
	c := &Cluster{
		opts:         opts,
		tele:         tele,
		ring:         NewRing(opts.VirtualNodes),
		shards:       make(map[string]*shard, len(opts.Shards)),
		queries:      tele.Counter("shardreg.query.requests"),
		uploads:      tele.Counter("shardreg.upload.requests"),
		downloads:    tele.Counter("shardreg.download.requests"),
		ranges:       tele.Counter("shardreg.range.requests"),
		failovers:    tele.Counter("shardreg.failovers"),
		degraded:     tele.Counter("shardreg.upload.degraded"),
		rebalObjects: tele.Counter("shardreg.rebalance.objects"),
		rebalBytes:   tele.Counter("shardreg.rebalance.bytes"),
		shardsGauge:  tele.Gauge("shardreg.shards"),
		downGauge:    tele.Gauge("shardreg.shards.down"),
		replGauge:    tele.Gauge("shardreg.replication"),
		readBalanced: tele.Counter("shardreg.read.balanced"),
		hedgeFired:   tele.Counter("shardreg.hedge.fired"),
		hedgeWon:     tele.Counter("shardreg.hedge.won"),
		hedgeWaste:   tele.Counter("shardreg.hedge.waste.bytes"),
		latHist:      tele.Histogram("shardreg.download.latency", telemetry.DefaultLatencyBounds),
	}
	for _, id := range opts.Shards {
		if err := validateShardID(id); err != nil {
			return nil, err
		}
		if _, dup := c.shards[id]; dup {
			return nil, fmt.Errorf("shardreg: shard %q: %w", id, ErrDuplicateShard)
		}
		c.ring.Add(id)
		c.shards[id] = c.newShard(id)
	}
	c.shardsGauge.Set(int64(len(c.shards)))
	c.replGauge.Set(int64(opts.Replication))
	return c, nil
}

func (c *Cluster) newShard(id string) *shard {
	reg := gearregistry.New(gearregistry.Options{Compress: c.opts.Compress})
	var store shardStore = reg
	if c.opts.Retry.Attempts() > 1 {
		// Attempts >= 1 is guaranteed, so the constructor cannot fail.
		rs, _ := gearregistry.NewRetryStoreOptions(reg, c.opts.Retry)
		store = rs
	}
	s := &shard{
		id:        id,
		reg:       reg,
		store:     store,
		objects:   c.tele.Gauge("shardreg.shard." + id + ".objects"),
		bytes:     c.tele.Gauge("shardreg.shard." + id + ".bytes"),
		reads:     c.tele.Counter("shardreg.shard." + id + ".reads"),
		readBytes: c.tele.Counter("shardreg.shard." + id + ".read.bytes"),
	}
	if c.opts.Topology != nil {
		s.links = c.opts.Topology.Node(id)
	}
	return s
}

// Telemetry returns the metrics registry the tier publishes into.
func (c *Cluster) Telemetry() *telemetry.Registry { return c.tele }

// Replication returns the configured replica count.
func (c *Cluster) Replication() int { return c.opts.Replication }

// VirtualNodes returns the per-shard ring point count.
func (c *Cluster) VirtualNodes() int { return c.opts.VirtualNodes }

// Shards lists member ids in sorted order.
func (c *Cluster) Shards() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Shards()
}

// Replicas returns the shards responsible for fp in replica order — the
// routing decision, exposed for tests and operators.
func (c *Cluster) Replicas(fp hashing.Fingerprint) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Lookup(fp, c.opts.Replication)
}

// shardByID resolves a member or reports ErrUnknownShard.
func (c *Cluster) shardByID(id string) (*shard, error) {
	c.mu.RLock()
	s, ok := c.shards[id]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("shardreg: shard %q: %w", id, ErrUnknownShard)
	}
	return s, nil
}

// replicaChain resolves fp's replica shards under one read lock.
func (c *Cluster) replicaChain(fp hashing.Fingerprint) []*shard {
	c.mu.RLock()
	ids := c.ring.Lookup(fp, c.opts.Replication)
	chain := make([]*shard, len(ids))
	for i, id := range ids {
		chain[i] = c.shards[id]
	}
	c.mu.RUnlock()
	return chain
}

// permanentUpload reports upload errors no other replica can fix.
func permanentUpload(err error) bool {
	return errors.Is(err, gearregistry.ErrFingerprintMismatch) ||
		errors.Is(err, hashing.ErrMalformed)
}

// Query implements gearregistry.Store, trying replicas in ring order and
// failing over past dead or erroring shards.
func (c *Cluster) Query(fp hashing.Fingerprint) (bool, error) {
	c.queries.Inc()
	if err := fp.Validate(); err != nil {
		return false, fmt.Errorf("shardreg: query: %w", err)
	}
	chain := c.replicaChain(fp)
	if len(chain) == 0 {
		return false, fmt.Errorf("shardreg: query %s: %w", fp, ErrNoShards)
	}
	var lastErr error
	for _, s := range chain {
		if s.down.Load() {
			c.failovers.Inc()
			lastErr = s.downErr()
			continue
		}
		present, err := s.store.Query(fp)
		if err != nil {
			c.failovers.Inc()
			lastErr = err
			continue
		}
		return present, nil
	}
	return false, fmt.Errorf("shardreg: query %s: all %d replicas failed: %w", fp, len(chain), lastErr)
}

// Upload implements gearregistry.Store: the object lands on every live
// replica. Success needs at least one accepting shard; writing fewer
// copies than the replication factor counts as a degraded upload.
func (c *Cluster) Upload(fp hashing.Fingerprint, data []byte) error {
	c.uploads.Inc()
	if err := fp.Validate(); err != nil {
		return fmt.Errorf("shardreg: upload: %w", err)
	}
	chain := c.replicaChain(fp)
	if len(chain) == 0 {
		return fmt.Errorf("shardreg: upload %s: %w", fp, ErrNoShards)
	}
	stored := 0
	var lastErr error
	for _, s := range chain {
		if s.down.Load() {
			lastErr = s.downErr()
			continue
		}
		if err := s.store.Upload(fp, data); err != nil {
			if permanentUpload(err) {
				return fmt.Errorf("shardreg: upload %s: %w", fp, err)
			}
			lastErr = err
			continue
		}
		s.sync()
		stored++
	}
	if stored == 0 {
		return fmt.Errorf("shardreg: upload %s: no replica accepted: %w", fp, lastErr)
	}
	if stored < len(chain) {
		c.degraded.Inc()
	}
	return nil
}

// Download implements gearregistry.Store with replica failover: dead or
// erroring shards are skipped (and counted as failovers); a replica
// that simply does not hold the object is tried past without a failover
// tick, so a tier-wide miss still reports ErrNotFound. Replica choice
// and hedging follow Options.Read; see DownloadTimed for the
// latency-returning form.
func (c *Cluster) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	payload, wire, _, err := c.DownloadTimed(fp)
	return payload, wire, err
}

// batchPermanent reports sub-batch errors that re-routing to another
// replica cannot fix; they fail the whole batch, preserving the
// all-or-nothing batch contract.
func batchPermanent(err error) bool {
	return errors.Is(err, gearregistry.ErrNotFound) ||
		errors.Is(err, gearregistry.ErrFingerprintMismatch) ||
		errors.Is(err, hashing.ErrMalformed)
}

// routeBatch is the fan-out engine shared by QueryBatch and
// DownloadBatch: it resolves every fingerprint's replica chain once,
// partitions the indices by each fingerprint's first live replica,
// serves one sub-batch per shard (in shard-id order, so runs are
// deterministic), and re-routes a failed sub-batch to each
// fingerprint's next replica. With balance set each chain is first
// reordered by power-of-two-choices (downloads only — queries are too
// cheap to matter); otherwise the first replica is the lowest rank.
// serve receives alt, resolving an index's next live replica, so a
// download sub-batch can hedge. With one shard the whole batch is a
// single sub-batch in request order — the exact single-registry call.
func (c *Cluster) routeBatch(fps []hashing.Fingerprint, balance bool, serve func(s *shard, idxs []int, alt func(int) *shard) error) error {
	c.mu.RLock()
	if c.ring.Len() == 0 {
		c.mu.RUnlock()
		return fmt.Errorf("shardreg: %w", ErrNoShards)
	}
	chains := make([][]*shard, len(fps))
	for i, fp := range fps {
		ids := c.ring.Lookup(fp, c.opts.Replication)
		chain := make([]*shard, len(ids))
		for j, id := range ids {
			chain[j] = c.shards[id]
		}
		chains[i] = chain
	}
	c.mu.RUnlock()
	if balance {
		for i, fp := range fps {
			chains[i] = c.readOrder(fp, chains[i])
		}
	}

	rank := make([]int, len(fps))
	remaining := make([]int, len(fps))
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		groups := make(map[*shard][]int)
		var order []*shard
		for _, i := range remaining {
			for rank[i] < len(chains[i]) && chains[i][rank[i]].down.Load() {
				rank[i]++
				c.failovers.Inc()
			}
			if rank[i] >= len(chains[i]) {
				return fmt.Errorf("shardreg: %s: all %d replicas failed: %w",
					fps[i], len(chains[i]), ErrShardDown)
			}
			s := chains[i][rank[i]]
			if _, ok := groups[s]; !ok {
				order = append(order, s)
			}
			groups[s] = append(groups[s], i)
		}
		sort.Slice(order, func(a, b int) bool { return order[a].id < order[b].id })
		alt := func(i int) *shard { return nextLive(chains[i], rank[i]+1) }
		remaining = remaining[:0]
		for _, s := range order {
			idxs := groups[s]
			if err := serve(s, idxs, alt); err != nil {
				if batchPermanent(err) {
					return err
				}
				for _, i := range idxs {
					rank[i]++
				}
				c.failovers.Inc()
				remaining = append(remaining, idxs...)
			}
		}
		sort.Ints(remaining)
	}
	return nil
}

// QueryBatch implements gearregistry.BatchQuerier by fanning the batch
// out per shard. Batches stay all-or-nothing: any malformed fingerprint
// fails the whole batch before routing.
func (c *Cluster) QueryBatch(fps []hashing.Fingerprint) ([]bool, error) {
	c.queries.Add(int64(len(fps)))
	for _, fp := range fps {
		if err := fp.Validate(); err != nil {
			return nil, fmt.Errorf("shardreg: querybatch: %w", err)
		}
	}
	present := make([]bool, len(fps))
	err := c.routeBatch(fps, false, func(s *shard, idxs []int, _ func(int) *shard) error {
		sub := make([]hashing.Fingerprint, len(idxs))
		for k, i := range idxs {
			sub[k] = fps[i]
		}
		verdicts, err := s.store.QueryBatch(sub)
		if err != nil {
			return err
		}
		for k, i := range idxs {
			present[i] = verdicts[k]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return present, nil
}

// DownloadBatch implements gearregistry.BatchDownloader by fanning the
// batch out per shard and re-routing failed sub-batches to the next
// replica. Payloads come back uncompressed in request order; wire bytes
// are the sum over sub-batches, each priced on the serving shard's
// link.
func (c *Cluster) DownloadBatch(fps []hashing.Fingerprint) ([][]byte, int64, error) {
	c.downloads.Add(int64(len(fps)))
	for _, fp := range fps {
		if err := fp.Validate(); err != nil {
			return nil, 0, fmt.Errorf("shardreg: batch: %w", err)
		}
	}
	payloads := make([][]byte, len(fps))
	var wire int64
	err := c.routeBatch(fps, c.opts.Read.Balance, func(s *shard, idxs []int, alt func(int) *shard) error {
		sub := make([]hashing.Fingerprint, len(idxs))
		for k, i := range idxs {
			sub[k] = fps[i]
		}
		ps, w, err := s.store.DownloadBatch(sub)
		if err != nil {
			return err
		}
		for k, i := range idxs {
			payloads[i] = ps[k]
		}
		wire += w
		c.priceBatch(s, idxs, w, alt)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return payloads, wire, nil
}

// ShardQueryBatch answers a batch against one addressed shard, with no
// failover — the shard-addressed RPC the routing wire protocol carries.
// Routing to a non-member reports ErrUnknownShard; a killed shard
// reports ErrShardDown.
func (c *Cluster) ShardQueryBatch(id string, fps []hashing.Fingerprint) ([]bool, error) {
	s, err := c.shardByID(id)
	if err != nil {
		return nil, err
	}
	if s.down.Load() {
		return nil, s.downErr()
	}
	c.queries.Add(int64(len(fps)))
	return s.store.QueryBatch(fps)
}

// ShardDownloadBatch serves a batch from one addressed shard, with no
// failover. Errors as ShardQueryBatch.
func (c *Cluster) ShardDownloadBatch(id string, fps []hashing.Fingerprint) ([][]byte, int64, error) {
	s, err := c.shardByID(id)
	if err != nil {
		return nil, 0, err
	}
	if s.down.Load() {
		return nil, 0, s.downErr()
	}
	c.downloads.Add(int64(len(fps)))
	payloads, wire, err := s.store.DownloadBatch(fps)
	if err != nil {
		return nil, 0, err
	}
	s.charge(len(fps), wire)
	s.countRead(len(fps), wire)
	return payloads, wire, nil
}

// KillShard marks a member dead: every routed operation fails over past
// it, and shard-addressed operations report ErrShardDown. Its data is
// retained for ReviveShard. Kill models failure — membership (and
// placement) does not change.
func (c *Cluster) KillShard(id string) error {
	s, err := c.shardByID(id)
	if err != nil {
		return err
	}
	if !s.down.Swap(true) {
		c.downGauge.Add(1)
	}
	return nil
}

// ReviveShard brings a killed member back with its data intact. Objects
// uploaded while it was down are not backfilled; run Rebalance to
// reconcile if writes happened during the outage.
func (c *Cluster) ReviveShard(id string) error {
	s, err := c.shardByID(id)
	if err != nil {
		return err
	}
	if s.down.Swap(false) {
		c.downGauge.Add(-1)
	}
	return nil
}

// RebalanceStats accounts a membership change: what moved over the
// wire and what ex-replicas dropped. It is a pure value snapshot; the
// cumulative counterparts live in the shardreg.rebalance.* telemetry
// counters.
type RebalanceStats struct {
	// MovedObjects/MovedBytes count replica copies created (bytes as
	// stored, i.e. wire-priced).
	MovedObjects int   `json:"movedObjects"`
	MovedBytes   int64 `json:"movedBytes"`
	// DroppedObjects/FreedBytes count replica copies deleted from
	// shards the ring no longer maps them to.
	DroppedObjects int   `json:"droppedObjects"`
	FreedBytes     int64 `json:"freedBytes"`
}

// AddShard grows the tier by one member and rebalances: exactly the
// objects whose replica set now includes the new shard are copied in
// (from a surviving replica), and copies stranded on ex-replicas are
// dropped. Only the consistent-hash delta moves.
func (c *Cluster) AddShard(id string) (RebalanceStats, error) {
	if err := validateShardID(id); err != nil {
		return RebalanceStats{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.shards[id]; ok {
		return RebalanceStats{}, fmt.Errorf("shardreg: shard %q: %w", id, ErrDuplicateShard)
	}
	c.ring.Add(id)
	c.shards[id] = c.newShard(id)
	c.shardsGauge.Set(int64(len(c.shards)))
	return c.rebalanceLocked()
}

// RemoveShard gracefully drains a member: the ring drops it, its
// objects move to their new owners (the leaving shard serves as a
// source), and the member is discarded. Removal must leave at least
// Replication members. On a rebalance error the member is kept (its
// data may still be a needed source); Rebalance can be re-run.
func (c *Cluster) RemoveShard(id string) (RebalanceStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.shards[id]
	if !ok {
		return RebalanceStats{}, fmt.Errorf("shardreg: shard %q: %w", id, ErrUnknownShard)
	}
	if len(c.shards)-1 < c.opts.Replication {
		return RebalanceStats{}, fmt.Errorf("shardreg: removing %s leaves %d shards for %d replicas: %w",
			id, len(c.shards)-1, c.opts.Replication, ErrBadReplication)
	}
	c.ring.Remove(id)
	st, err := c.rebalanceLocked()
	if err != nil {
		return st, err
	}
	if s.down.Load() {
		c.downGauge.Add(-1)
	}
	delete(c.shards, id)
	c.shardsGauge.Set(int64(len(c.shards)))
	s.objects.Set(0)
	s.bytes.Set(0)
	return st, nil
}

// Rebalance reconciles physical placement with the current ring — a
// no-op when they already agree. Exposed for recovery after a partial
// membership change or a revive-after-writes.
func (c *Cluster) Rebalance() (RebalanceStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rebalanceLocked()
}

// rebalanceLocked moves the delta between where objects physically are
// and where the ring maps them: missing replicas are copied from the
// first live holder (priced out of the source and into the target), and
// holders outside the replica set drop their copies. Physical placement
// always equals the previous ring's placement, so this is exactly the
// consistent-hash delta.
func (c *Cluster) rebalanceLocked() (RebalanceStats, error) {
	var st RebalanceStats
	ids := make([]string, 0, len(c.shards))
	for id := range c.shards {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	holders := make(map[hashing.Fingerprint][]*shard)
	var order []hashing.Fingerprint
	for _, id := range ids {
		s := c.shards[id]
		for _, fp := range s.reg.Fingerprints() {
			if _, ok := holders[fp]; !ok {
				order = append(order, fp)
			}
			holders[fp] = append(holders[fp], s)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	for _, fp := range order {
		want := c.ring.Lookup(fp, c.opts.Replication)
		wantSet := make(map[string]bool, len(want))
		for _, id := range want {
			wantSet[id] = true
		}
		hold := holders[fp]
		holdSet := make(map[string]bool, len(hold))
		for _, h := range hold {
			holdSet[h.id] = true
		}
		for _, id := range want {
			if holdSet[id] {
				continue
			}
			var src *shard
			for _, h := range hold {
				if !h.down.Load() {
					src = h
					break
				}
			}
			if src == nil {
				return st, fmt.Errorf("shardreg: rebalance %s: no live source replica: %w", fp, ErrShardDown)
			}
			payload, wire, err := src.reg.Download(fp)
			if err != nil {
				return st, fmt.Errorf("shardreg: rebalance %s: %w", fp, err)
			}
			target := c.shards[id]
			if err := target.reg.Upload(fp, payload); err != nil {
				return st, fmt.Errorf("shardreg: rebalance %s: %w", fp, err)
			}
			st.MovedObjects++
			st.MovedBytes += wire
			src.charge(1, wire)
			target.charge(1, wire)
		}
		for _, h := range hold {
			if wantSet[h.id] {
				continue
			}
			freed, err := h.reg.Delete(fp)
			if err != nil {
				return st, fmt.Errorf("shardreg: rebalance %s: %w", fp, err)
			}
			st.DroppedObjects++
			st.FreedBytes += freed
		}
	}
	c.rebalObjects.Add(int64(st.MovedObjects))
	c.rebalBytes.Add(st.MovedBytes)
	for _, id := range ids {
		if s, ok := c.shards[id]; ok {
			s.sync()
		}
	}
	return st, nil
}

// Seed copies every object of src into the tier under the current
// placement — the migration step from a single-node registry to the
// sharded tier. Each object is uploaded once through the router (so it
// lands on all replicas); the count of source objects is returned.
func (c *Cluster) Seed(src *gearregistry.Registry) (int, error) {
	fps := src.Fingerprints()
	for _, fp := range fps {
		payload, _, err := src.Download(fp)
		if err != nil {
			return 0, fmt.Errorf("shardreg: seed %s: %w", fp, err)
		}
		if err := c.Upload(fp, payload); err != nil {
			return 0, fmt.Errorf("shardreg: seed: %w", err)
		}
	}
	return len(fps), nil
}

// PrimaryLoad returns, per member, how many stored objects the ring
// routes to it first — the load a single-shard failure re-routes to
// replicas. (OwnedShare is the hash-space analogue; this is the actual
// object count, which is what a worst-case kill should maximize.)
func (c *Cluster) PrimaryLoad() map[string]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int, len(c.shards))
	for _, s := range c.shards {
		out[s.id] = 0
	}
	seen := make(map[hashing.Fingerprint]bool)
	for _, s := range c.shards {
		for _, fp := range s.reg.Fingerprints() {
			if seen[fp] {
				continue
			}
			seen[fp] = true
			if ids := c.ring.Lookup(fp, 1); len(ids) == 1 {
				out[ids[0]]++
			}
		}
	}
	return out
}

// ShardStats is one member's view in Stats: a pure value snapshot over
// the shard's pool gauges and ring ownership.
type ShardStats struct {
	ID           string  `json:"id"`
	Down         bool    `json:"down"`
	Objects      int     `json:"objects"`
	StoredBytes  int64   `json:"storedBytes"`
	LogicalBytes int64   `json:"logicalBytes"`
	OwnedShare   float64 `json:"ownedShare"` // primary hash-space fraction
	Reads        int64   `json:"reads"`      // read requests this shard served
	ReadBytes    int64   `json:"readBytes"`  // wire bytes it served to readers
	ReadShare    float64 `json:"readShare"`  // fraction of the tier's served reads
}

// Stats summarizes the tier: per-shard placement and pool usage plus
// the routing counters — a view over the shardreg.* telemetry handles.
type Stats struct {
	Shards            []ShardStats `json:"shards"`
	Replication       int          `json:"replication"`
	VirtualNodes      int          `json:"virtualNodes"`
	Objects           int          `json:"objects"` // replica copies across the tier
	StoredBytes       int64        `json:"storedBytes"`
	Failovers         int64        `json:"failovers"`
	DegradedUploads   int64        `json:"degradedUploads"`
	RebalancedObjects int64        `json:"rebalancedObjects"`
	RebalancedBytes   int64        `json:"rebalancedBytes"`
	Reads             int64        `json:"reads"`           // read requests served across the tier
	BalancedReads     int64        `json:"balancedReads"`   // p2c picks that diverged from rank order
	HedgesFired       int64        `json:"hedgesFired"`     // hedged requests issued
	HedgesWon         int64        `json:"hedgesWon"`       // hedges whose backup finished first
	HedgeWasteBytes   int64        `json:"hedgeWasteBytes"` // cancelled-loser egress
}

// Stats returns a snapshot of the tier.
func (c *Cluster) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	share := c.ring.OwnedShare()
	st := Stats{
		Replication:       c.opts.Replication,
		VirtualNodes:      c.opts.VirtualNodes,
		Failovers:         c.failovers.Value(),
		DegradedUploads:   c.degraded.Value(),
		RebalancedObjects: c.rebalObjects.Value(),
		RebalancedBytes:   c.rebalBytes.Value(),
		BalancedReads:     c.readBalanced.Value(),
		HedgesFired:       c.hedgeFired.Value(),
		HedgesWon:         c.hedgeWon.Value(),
		HedgeWasteBytes:   c.hedgeWaste.Value(),
	}
	for _, id := range c.ring.Shards() {
		s := c.shards[id]
		ps := s.reg.Stats()
		st.Shards = append(st.Shards, ShardStats{
			ID:           id,
			Down:         s.down.Load(),
			Objects:      ps.Objects,
			StoredBytes:  ps.StoredBytes,
			LogicalBytes: ps.LogicalBytes,
			OwnedShare:   share[id],
			Reads:        s.reads.Value(),
			ReadBytes:    s.readBytes.Value(),
		})
		st.Objects += ps.Objects
		st.StoredBytes += ps.StoredBytes
		st.Reads += s.reads.Value()
	}
	if st.Reads > 0 {
		for i := range st.Shards {
			st.Shards[i].ReadShare = float64(st.Shards[i].Reads) / float64(st.Reads)
		}
	}
	return st
}
