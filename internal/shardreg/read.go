package shardreg

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
)

// ReadOptions tunes the download side of the tier. Uploads and
// rebalancing always keep ring order, so placement is bit-identical
// whatever the read policy; with the zero value the read path
// degenerates exactly to rank-order replica failover.
type ReadOptions struct {
	// Balance picks the serving replica by power-of-two-choices over the
	// live replicas instead of always the lowest rank: two candidates
	// are drawn deterministically from the fingerprint, and the one with
	// the lower load score — EWMA service latency × (1 + in-flight
	// requests) — serves. One slow or hot shard stops setting the tail
	// for every object it owns.
	Balance bool
	// Hedge issues a mirrored request to the next-best replica when the
	// first one runs past the hedge delay, takes whichever completes
	// first, and cancels the loser, charging only the bytes it moved
	// before cancellation. Batch sub-requests hedge per shard partition.
	Hedge bool
	// HedgeDelay overrides the adaptive hedge trigger with a fixed
	// per-request delay. Zero means adaptive: 3× the expected cost of
	// the read under smoothed per-request and per-byte latency EWMAs, a
	// cheap p95 proxy in the tail-at-scale tradition — only reads
	// running well past what their size predicts pay the second copy.
	HedgeDelay time.Duration
	// Seed perturbs the per-fingerprint candidate draw so distinct
	// clusters explore different replica pairs. Zero uses a fixed
	// default stream.
	Seed uint64
}

// ewmaShift is the EWMA smoothing divisor (alpha = 1/8), the same gain
// TCP uses for its smoothed RTT — stable under jitter, fast enough to
// notice a straggler within a handful of reads.
const ewmaShift = 3

// score is the shard's load estimate the balancer compares: smoothed
// observed service latency scaled by concurrent occupancy. A shard that
// has never served reads scores 0, so cold shards attract probes.
func (s *shard) score() float64 {
	return float64(s.ewma.Load()) * float64(1+s.inflight.Load())
}

// countRead attributes n served read requests of wire bytes to this
// shard's read-share telemetry.
func (s *shard) countRead(n int, wire int64) {
	s.reads.Add(int64(n))
	s.readBytes.Add(wire)
}

// observe folds one completed download — its latency and the wire bytes
// it moved — into the shard's EWMA and the cluster's smoothed latency
// model (the adaptive hedge clock): srtt tracks per-request cost, and
// srttPB tracks per-byte cost so the trigger scales with read size.
func (c *Cluster) observe(s *shard, cost time.Duration, wire int64) {
	if cost <= 0 {
		return
	}
	c.observeCensored(s, cost)
	c.latHist.ObserveDuration(cost)
	c.latMu.Lock()
	if c.srtt == 0 {
		c.srtt = cost
	} else {
		c.srtt += (cost - c.srtt) >> ewmaShift
	}
	if wire > 0 {
		pb := float64(cost) / float64(wire)
		if c.srttPB == 0 {
			c.srttPB = pb
		} else {
			c.srttPB += (pb - c.srttPB) / (1 << ewmaShift)
		}
	}
	c.latMu.Unlock()
}

// observeCensored folds a cancelled hedge loser's busy time into the
// shard's EWMA only. The attempt never completed, so its true latency
// is unknown — but it was busy at least until cancellation, and that
// lower bound is what keeps the balancer learning about a slow replica
// whose reads keep being rescued by hedges. The cluster's smoothed
// latency (the hedge clock) tracks completed reads only, so censored
// samples never inflate the trigger itself.
func (c *Cluster) observeCensored(s *shard, busy time.Duration) {
	if busy <= 0 {
		return
	}
	for {
		old := s.ewma.Load()
		next := int64(busy)
		if old != 0 {
			next = old + (int64(busy)-old)>>ewmaShift
		}
		if s.ewma.CompareAndSwap(old, next) {
			break
		}
	}
}

// hedgeTrigger returns the hedge point for a read of n requests moving
// wire bytes: the configured per-request override scaled by n, or 3× the
// expected cost of that read under the smoothed latency model —
// whichever of the per-request and per-byte estimates is larger, so the
// trigger tracks the overhead floor on tiny reads and scales with size
// on big ones (a large healthy download is not a straggler). Zero
// (nothing observed yet, no override) disarms hedging.
func (c *Cluster) hedgeTrigger(n int, wire int64) time.Duration {
	if d := c.opts.Read.HedgeDelay; d > 0 {
		return d * time.Duration(n)
	}
	c.latMu.Lock()
	defer c.latMu.Unlock()
	t := c.srtt * time.Duration(n)
	if pb := time.Duration(c.srttPB * float64(wire)); pb > t {
		t = pb
	}
	return 3 * t
}

// readOrder applies power-of-two-choices to fp's replica chain: two
// candidate ranks are drawn from the fingerprint hash (stream-split by
// the configured seed), and the lower-scored candidate moves to the
// front; the rest keep rank order, so failover past the choice is
// unchanged. With balancing off, fewer than two live replicas, or a
// score tie at rank 0, the chain is returned as-is.
func (c *Cluster) readOrder(fp hashing.Fingerprint, chain []*shard) []*shard {
	if !c.opts.Read.Balance || len(chain) < 2 {
		return chain
	}
	live := make([]int, 0, len(chain))
	for i, s := range chain {
		if !s.down.Load() {
			live = append(live, i)
		}
	}
	if len(live) < 2 {
		return chain
	}
	h := mix64(hash64(string(fp)) ^ c.opts.Read.Seed)
	a := live[int(h%uint64(len(live)))]
	b := live[int((h>>32)%uint64(len(live)))]
	if a == b {
		// Same draw twice: take the candidate's live successor so the
		// comparison is never degenerate.
		b = live[(int(h%uint64(len(live)))+1)%len(live)]
	}
	best := a
	if sa, sb := chain[a].score(), chain[b].score(); sb < sa || (sb == sa && b < a) {
		best = b
	}
	if best == 0 {
		return chain
	}
	c.readBalanced.Inc()
	out := make([]*shard, 0, len(chain))
	out = append(out, chain[best])
	for i, s := range chain {
		if i != best {
			out = append(out, s)
		}
	}
	return out
}

// nextLive returns the first live shard at or past from, or nil.
func nextLive(chain []*shard, from int) *shard {
	for _, s := range chain[from:] {
		if !s.down.Load() {
			return s
		}
	}
	return nil
}

// priceRead prices one served single-object download on s's link and
// returns the client-observed latency, hedging to alt when armed. The
// hedge is modeled analytically under the virtual clock: both replicas'
// costs are quoted, the winner records its full transfer, and the loser
// records only the prefix it moved before cancellation — that prefix is
// the hedge's extra egress, tracked in shardreg.hedge.waste.bytes.
// Replicas store identical (deterministically compressed) bytes, so the
// payload is the same whichever side wins and client bytes stay at
// exact parity.
func (c *Cluster) priceRead(s, alt *shard, wire int64, first bool) time.Duration {
	if s.links == nil {
		s.countRead(1, wire)
		return 0
	}
	costP, err := s.links.WAN.TransferQuote(1, wire)
	if err != nil {
		s.countRead(1, wire)
		return 0
	}
	delay := c.hedgeTrigger(1, wire)
	if first && c.opts.Read.Hedge && delay > 0 && costP > delay &&
		alt != nil && alt.links != nil {
		if costB, errB := alt.links.WAN.TransferQuote(1, wire); errB == nil {
			c.hedgeFired.Inc()
			altDone := delay + costB
			if altDone < costP {
				// Backup wins: it serves the client; the primary is
				// cancelled altDone in, having moved a prefix.
				c.hedgeWon.Inc()
				alt.links.WAN.RecordTransfer(1, wire, costB)
				partial := s.links.WAN.PrefixBytes(1, wire, altDone, costP)
				s.links.WAN.RecordTransfer(1, partial, altDone)
				c.hedgeWaste.Add(partial)
				c.observe(alt, costB, wire)
				c.observeCensored(s, altDone)
				alt.countRead(1, wire)
				return altDone
			}
			// Primary wins: the backup started delay in and is cancelled
			// when the primary completes.
			busy := costP - delay
			partial := alt.links.WAN.PrefixBytes(1, wire, busy, costB)
			alt.links.WAN.RecordTransfer(1, partial, busy)
			c.hedgeWaste.Add(partial)
			s.links.WAN.RecordTransfer(1, wire, costP)
			c.observe(s, costP, wire)
			s.countRead(1, wire)
			return costP
		}
	}
	s.links.WAN.RecordTransfer(1, wire, costP)
	c.observe(s, costP, wire)
	s.countRead(1, wire)
	return costP
}

// priceBatch prices a served sub-batch of n requests totalling w bytes
// on s's link, hedging the whole sub-batch when its mean per-request
// cost runs past the hedge delay and every index has a live alternate
// replica. The alternate side splits by each index's next replica and
// runs its groups in parallel, so its completion is the delay plus the
// slowest group. Per-index wire sizes are not visible at this layer;
// groups are priced on their proportional share of the batch volume.
func (c *Cluster) priceBatch(s *shard, idxs []int, w int64, alt func(int) *shard) time.Duration {
	n := len(idxs)
	if s.links == nil {
		s.countRead(n, w)
		return 0
	}
	costP, err := s.links.WAN.TransferQuote(n, w)
	if err != nil {
		s.countRead(n, w)
		return 0
	}
	delay := c.hedgeTrigger(n, w)
	if c.opts.Read.Hedge && delay > 0 && costP > delay {
		if groups, order := altGroups(idxs, alt, n); order != nil {
			c.hedgeFired.Inc()
			type quoted struct {
				a    *shard
				ng   int
				wg   int64
				cost time.Duration
			}
			qs := make([]quoted, 0, len(order))
			var rest = w
			worst := time.Duration(0)
			ok := true
			for gi, a := range order {
				ng := groups[a]
				wg := w * int64(ng) / int64(n)
				if gi == len(order)-1 {
					wg = rest
				}
				rest -= wg
				costG, errG := a.links.WAN.TransferQuote(ng, wg)
				if errG != nil {
					ok = false
					break
				}
				if costG > worst {
					worst = costG
				}
				qs = append(qs, quoted{a, ng, wg, costG})
			}
			if ok {
				altDone := delay + worst
				if altDone < costP {
					// The alternate set wins; the primary sub-batch is
					// cancelled altDone in.
					c.hedgeWon.Inc()
					for _, q := range qs {
						q.a.links.WAN.RecordTransfer(q.ng, q.wg, q.cost)
						if q.ng > 0 {
							c.observe(q.a, q.cost/time.Duration(q.ng), q.wg/int64(q.ng))
						}
						q.a.countRead(q.ng, q.wg)
					}
					partial := s.links.WAN.PrefixBytes(n, w, altDone, costP)
					s.links.WAN.RecordTransfer(n, partial, altDone)
					c.hedgeWaste.Add(partial)
					if n > 0 {
						c.observeCensored(s, altDone/time.Duration(n))
					}
					return altDone
				}
				// Primary wins; the alternates started delay in and are
				// cancelled when it completes.
				busy := costP - delay
				for _, q := range qs {
					partial := q.a.links.WAN.PrefixBytes(q.ng, q.wg, busy, q.cost)
					q.a.links.WAN.RecordTransfer(q.ng, partial, busy)
					c.hedgeWaste.Add(partial)
				}
			}
		}
	}
	s.links.WAN.RecordTransfer(n, w, costP)
	if n > 0 {
		c.observe(s, costP/time.Duration(n), w/int64(n))
	}
	s.countRead(n, w)
	return costP
}

// altGroups partitions idxs by each index's next live replica with an
// attached link, in shard-id order (deterministic quoting order keeps
// jitter streams reproducible). It returns nils unless every index has
// one — a sub-batch can only be hedged whole.
func altGroups(idxs []int, alt func(int) *shard, n int) (map[*shard]int, []*shard) {
	groups := make(map[*shard]int)
	var order []*shard
	for _, i := range idxs {
		a := alt(i)
		if a == nil || a.links == nil {
			return nil, nil
		}
		if _, ok := groups[a]; !ok {
			order = append(order, a)
		}
		groups[a]++
	}
	if len(order) == 0 {
		return nil, nil
	}
	sort.Slice(order, func(i, j int) bool { return order[i].id < order[j].id })
	return groups, order
}

// DownloadTimed is Download plus the modeled client-observed latency of
// the read under the attached topology (0 without one) — what the
// latency-distribution experiments sample. Replica selection follows
// ReadOptions; failover past dead or erroring shards matches Download
// exactly.
func (c *Cluster) DownloadTimed(fp hashing.Fingerprint) ([]byte, int64, time.Duration, error) {
	c.downloads.Inc()
	if err := fp.Validate(); err != nil {
		return nil, 0, 0, fmt.Errorf("shardreg: download: %w", err)
	}
	chain := c.replicaChain(fp)
	if len(chain) == 0 {
		return nil, 0, 0, fmt.Errorf("shardreg: download %s: %w", fp, ErrNoShards)
	}
	chain = c.readOrder(fp, chain)
	var lastErr error
	first := true
	for i, s := range chain {
		if s.down.Load() {
			c.failovers.Inc()
			lastErr = s.downErr()
			continue
		}
		s.inflight.Add(1)
		payload, wire, err := s.store.Download(fp)
		if err != nil {
			s.inflight.Add(-1)
			if !errors.Is(err, gearregistry.ErrNotFound) {
				c.failovers.Inc()
			}
			lastErr = err
			first = false
			continue
		}
		cost := c.priceRead(s, nextLive(chain, i+1), wire, first)
		s.inflight.Add(-1)
		return payload, wire, cost, nil
	}
	return nil, 0, 0, fmt.Errorf("shardreg: download %s: %w", fp, lastErr)
}
