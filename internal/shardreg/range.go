package shardreg

import (
	"errors"
	"fmt"
	"time"

	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
)

// Range reads over the tier. Cluster implements
// gearregistry.RangeDownloader, so a chunk-faulting viewer works against
// a sharded tier exactly as against a single registry: ranges route by
// the same replica chain as whole-object reads (same ring lookup, same
// power-of-two-choices ordering, same failover past dead shards), and
// the serving shard's WAN link prices the transfer as a range request —
// per-request overhead plus RangeOverhead, then exactly n payload bytes.
//
// Ranges are never hedged. They are the small, overhead-dominated tail
// of the read mix; mirroring one would double the fixed per-request
// cost that already dominates it, and the store's fetch window above
// this layer retries through failover instead.

var _ gearregistry.RangeDownloader = (*Cluster)(nil)

// rangePermanent reports range errors no other replica can fix:
// replicas store identical bytes, so a range that does not fit on one
// shard does not fit anywhere.
func rangePermanent(err error) bool {
	return errors.Is(err, gearregistry.ErrBadRange) ||
		errors.Is(err, hashing.ErrMalformed)
}

// DownloadRange implements gearregistry.RangeDownloader with replica
// failover; see DownloadRangeTimed for the latency-returning form.
func (c *Cluster) DownloadRange(fp hashing.Fingerprint, off, n int64) ([]byte, int64, error) {
	payload, wire, _, err := c.DownloadRangeTimed(fp, off, n)
	return payload, wire, err
}

// DownloadRangeTimed is DownloadRange plus the modeled client-observed
// latency under the attached topology (0 without one). Dead or erroring
// shards are skipped and counted as failovers; a replica that simply
// does not hold the object is tried past without a failover tick, and
// out-of-bounds ranges fail immediately — every replica stores the same
// bytes, so no failover can satisfy them.
func (c *Cluster) DownloadRangeTimed(fp hashing.Fingerprint, off, n int64) ([]byte, int64, time.Duration, error) {
	c.ranges.Inc()
	if err := fp.Validate(); err != nil {
		return nil, 0, 0, fmt.Errorf("shardreg: range: %w", err)
	}
	chain := c.replicaChain(fp)
	if len(chain) == 0 {
		return nil, 0, 0, fmt.Errorf("shardreg: range %s: %w", fp, ErrNoShards)
	}
	chain = c.readOrder(fp, chain)
	var lastErr error
	for _, s := range chain {
		if s.down.Load() {
			c.failovers.Inc()
			lastErr = s.downErr()
			continue
		}
		rd, ok := s.store.(gearregistry.RangeDownloader)
		if !ok {
			return nil, 0, 0, fmt.Errorf("shardreg: range %s: %w", fp, gearregistry.ErrRangeUnsupported)
		}
		s.inflight.Add(1)
		payload, wire, err := rd.DownloadRange(fp, off, n)
		if err != nil {
			s.inflight.Add(-1)
			if rangePermanent(err) {
				return nil, 0, 0, fmt.Errorf("shardreg: range %s: %w", fp, err)
			}
			if !errors.Is(err, gearregistry.ErrNotFound) {
				c.failovers.Inc()
			}
			lastErr = err
			continue
		}
		cost := c.priceRange(s, wire)
		s.inflight.Add(-1)
		return payload, wire, cost, nil
	}
	return nil, 0, 0, fmt.Errorf("shardreg: range %s: %w", fp, lastErr)
}

// priceRange prices one served range on s's link as a range transfer
// and returns the client-observed latency. Completed ranges feed the
// same per-shard EWMA and cluster latency model as whole reads, so the
// balancer's load picture covers the chunk-faulting traffic too.
func (c *Cluster) priceRange(s *shard, wire int64) time.Duration {
	if s.links == nil {
		s.countRead(1, wire)
		return 0
	}
	cost, err := s.links.WAN.TransferRangeQuote(1, wire)
	if err != nil {
		s.countRead(1, wire)
		return 0
	}
	s.links.WAN.RecordTransfer(1, wire, cost)
	c.observe(s, cost, wire)
	s.countRead(1, wire)
	return cost
}
