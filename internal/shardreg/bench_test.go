package shardreg

import (
	"testing"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/netsim"
)

// benchCluster builds a seeded 4-shard, 2-replica tier with a topology
// attached, the shape the read-path benchmarks exercise.
func benchCluster(b *testing.B, read ReadOptions) (*Cluster, []hashing.Fingerprint) {
	b.Helper()
	topo, err := netsim.NewTopology(netsim.DefaultLAN().WithBandwidth(100), netsim.DefaultLAN())
	if err != nil {
		b.Fatal(err)
	}
	c := newCluster(b, 4, 2, Options{Topology: topo, Read: read})
	objs := corpus(b, 64)
	uploadAll(b, c, objs)
	fps := make([]hashing.Fingerprint, 0, len(objs))
	for fp := range objs {
		fps = append(fps, fp)
	}
	return c, fps
}

func benchDownload(b *testing.B, read ReadOptions) {
	c, fps := benchCluster(b, read)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := c.DownloadTimed(fps[i%len(fps)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDownloadRankOrder(b *testing.B) {
	benchDownload(b, ReadOptions{})
}

func BenchmarkDownloadBalanced(b *testing.B) {
	benchDownload(b, ReadOptions{Balance: true})
}

func BenchmarkDownloadHedged(b *testing.B) {
	benchDownload(b, ReadOptions{Balance: true, Hedge: true})
}

func BenchmarkDownloadRange(b *testing.B) {
	c, fps := benchCluster(b, ReadOptions{Balance: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.DownloadRange(fps[i%len(fps)], 4, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDownloadBatch(b *testing.B) {
	c, fps := benchCluster(b, ReadOptions{Balance: true, Hedge: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.DownloadBatch(fps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadOrder(b *testing.B) {
	c, fps := benchCluster(b, ReadOptions{Balance: true})
	chains := make([][]*shard, len(fps))
	for i, fp := range fps {
		chains[i] = c.replicaChain(fp)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.readOrder(fps[i%len(fps)], chains[i%len(chains)])
	}
}
