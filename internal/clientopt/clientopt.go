// Package clientopt is the one HTTP client option surface shared by
// every remote client in the codebase: the gear-registry store client,
// the peer tracker client, and the prefetch profile client each grew
// their own retry/backoff/timeout knobs; this package replaces all
// three patterns with a single Options struct (exposed publicly as
// gear.ClientOptions).
package clientopt

import (
	"net/http"
	"time"
)

// MaxBackoffShift caps exponential backoff growth: the wait before
// retry i is Backoff << min(i-1, MaxBackoffShift), so with the default
// shift the longest sleep is 64× the base.
const MaxBackoffShift = 6

// Options configures a remote HTTP client. The zero value means one
// attempt, no backoff, default transport timeout — exactly the
// behavior every client had before this struct existed.
type Options struct {
	// Retries is the number of re-attempts after the first try fails
	// on a transient error. 0 disables retrying.
	Retries int
	// Backoff is the wait before the first retry; it doubles per retry
	// up to MaxBackoffShift doublings. 0 retries immediately.
	Backoff time.Duration
	// Timeout bounds each HTTP request end to end. 0 leaves the
	// http.Client default (no timeout).
	Timeout time.Duration
}

// Attempts returns the total try budget (first try + retries),
// never below 1.
func (o Options) Attempts() int {
	if o.Retries < 0 {
		return 1
	}
	return o.Retries + 1
}

// HTTPClient returns an http.Client honoring o.Timeout. With a zero
// Timeout it returns nil so callers fall back to their existing
// default-client path.
func (o Options) HTTPClient() *http.Client {
	if o.Timeout <= 0 {
		return nil
	}
	return &http.Client{Timeout: o.Timeout}
}

// Sleep blocks for the backoff due before retry number retry
// (1-based). Retry 0 or a zero Backoff return immediately.
func (o Options) Sleep(retry int) {
	if retry <= 0 || o.Backoff <= 0 {
		return
	}
	shift := retry - 1
	if shift > MaxBackoffShift {
		shift = MaxBackoffShift
	}
	time.Sleep(o.Backoff << shift)
}
