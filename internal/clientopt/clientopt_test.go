package clientopt

import (
	"testing"
	"time"
)

func TestZeroValueMeansSingleAttempt(t *testing.T) {
	var o Options
	if got := o.Attempts(); got != 1 {
		t.Fatalf("zero options attempts = %d, want 1", got)
	}
	if hc := o.HTTPClient(); hc != nil {
		t.Fatalf("zero options client = %v, want nil (caller default)", hc)
	}
	// Sleeps must all be immediate.
	start := time.Now()
	o.Sleep(0)
	o.Sleep(1)
	o.Sleep(100)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("zero-backoff sleep blocked")
	}
}

func TestAttempts(t *testing.T) {
	cases := []struct {
		retries int
		want    int
	}{
		{-5, 1}, {0, 1}, {1, 2}, {3, 4},
	}
	for _, c := range cases {
		o := Options{Retries: c.retries}
		if got := o.Attempts(); got != c.want {
			t.Errorf("Retries=%d: attempts = %d, want %d", c.retries, got, c.want)
		}
	}
}

func TestHTTPClientTimeout(t *testing.T) {
	o := Options{Timeout: 3 * time.Second}
	hc := o.HTTPClient()
	if hc == nil || hc.Timeout != 3*time.Second {
		t.Fatalf("client = %+v, want timeout 3s", hc)
	}
}

func TestSleepBackoffDoubles(t *testing.T) {
	o := Options{Backoff: time.Millisecond}
	// Retry 3 should sleep Backoff << 2 = 4ms; just bound it loosely.
	start := time.Now()
	o.Sleep(3)
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("retry 3 slept %v, want >= 4ms", d)
	}
}

func TestSleepCapped(t *testing.T) {
	o := Options{Backoff: time.Microsecond}
	// A huge retry index must not shift into absurd durations.
	start := time.Now()
	o.Sleep(1 << 20)
	if d := time.Since(start); d > time.Second {
		t.Fatalf("capped sleep took %v", d)
	}
}
