package peer

import (
	"fmt"
	"sync"

	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/telemetry"
)

// Locator is the tracker-side view the fetch path needs: who, other
// than me, holds this file? *Tracker and *TrackerClient both satisfy
// it.
type Locator interface {
	Locate(fp hashing.Fingerprint, exclude string) []string
}

// FileServer is what a located holder must offer: the registry's
// download verb. *Server and gearregistry HTTP clients both satisfy it.
type FileServer interface {
	Download(fp hashing.Fingerprint) (payload []byte, wireBytes int64, err error)
}

// Network resolves a holder id to its FileServer — the cluster's
// dialing plane.
type Network interface {
	Peer(id string) (FileServer, bool)
}

// StaticNetwork is a fixed in-process Network, the deployment
// simulator's cluster fabric. Safe for concurrent use.
type StaticNetwork struct {
	mu    sync.RWMutex
	peers map[string]FileServer
}

// NewStaticNetwork returns an empty network.
func NewStaticNetwork() *StaticNetwork {
	return &StaticNetwork{peers: make(map[string]FileServer)}
}

// Add registers (or replaces) the server for id.
func (n *StaticNetwork) Add(id string, s FileServer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = s
}

// Remove deregisters the server for id — a node leaving the cluster.
// Locates that still name the departed holder miss on dial and fall
// back to the next holder or the registry.
func (n *StaticNetwork) Remove(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.peers, id)
}

// Peer implements Network.
func (n *StaticNetwork) Peer(id string) (FileServer, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s, ok := n.peers[id]
	return s, ok
}

// Exchange is a node's fetch-side of peer distribution: it locates
// holders through the tracker, downloads from the first that delivers
// verifiable bytes, and reports a miss otherwise so the caller falls
// back to the registry. It plugs into the store's fetch path as its
// peer source. Safe for concurrent use.
type Exchange struct {
	self    string
	tracker Locator
	network Network

	hits, misses     *telemetry.Counter
	corrupt, errored *telemetry.Counter
	objects, bytes   *telemetry.Counter
}

// NewExchange returns the exchange for the node named self, publishing
// into a private telemetry registry.
func NewExchange(self string, tracker Locator, network Network) *Exchange {
	return NewExchangeWithTelemetry(self, tracker, network, nil)
}

// NewExchangeWithTelemetry is NewExchange publishing peer.fetch.*
// metrics into reg — typically the owning daemon's registry. Nil gets
// private, live handles.
func NewExchangeWithTelemetry(self string, tracker Locator, network Network, reg *telemetry.Registry) *Exchange {
	return &Exchange{
		self:    self,
		tracker: tracker,
		network: network,
		hits:    reg.Counter("peer.fetch.hits"),
		misses:  reg.Counter("peer.fetch.misses"),
		corrupt: reg.Counter("peer.fetch.corrupt"),
		errored: reg.Counter("peer.fetch.errored"),
		objects: reg.Counter("peer.fetch.objects"),
		bytes:   reg.Counter("peer.fetch.bytes"),
	}
}

// FetchPeer tries to obtain fp from a cluster peer. It walks the
// tracker's holder list (self excluded), skipping holders that error or
// return bytes failing fingerprint verification — a corrupt peer costs
// one wasted probe, never corrupt data. ok=false means no peer could
// serve the file and the caller should use the registry.
func (e *Exchange) FetchPeer(fp hashing.Fingerprint) (data []byte, wire int64, ok bool) {
	for _, id := range e.tracker.Locate(fp, e.self) {
		srv, found := e.network.Peer(id)
		if !found {
			continue
		}
		payload, w, err := srv.Download(fp)
		if err != nil {
			e.errored.Add(1)
			continue
		}
		if err := verifyPeer(fp, payload); err != nil {
			e.corrupt.Add(1)
			continue
		}
		e.hits.Add(1)
		e.objects.Add(1)
		e.bytes.Add(w)
		return payload, w, true
	}
	e.misses.Add(1)
	return nil, 0, false
}

// verifyPeer checks a peer payload against its content address;
// collision fallback IDs ("<fp>-cN") cannot be verified by hashing and
// are accepted here — the store re-verifies everything it caches.
func verifyPeer(fp hashing.Fingerprint, data []byte) error {
	if len(fp) == 32 && hashing.FingerprintBytes(data) != fp {
		return fmt.Errorf("peer: %s: %w", fp, ErrCorruptPeer)
	}
	return nil
}

// ErrCorruptPeer reports a peer whose bytes fail fingerprint
// verification.
var ErrCorruptPeer = fmt.Errorf("peer served bytes failing fingerprint verification")

// ExchangeStats summarizes the node's peer-fetch outcomes.
type ExchangeStats struct {
	// Hits/Misses count FetchPeer calls that were / were not served by
	// some peer.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Corrupt and Errored count individual holders skipped.
	Corrupt int64 `json:"corrupt"`
	Errored int64 `json:"errored"`
	// Objects/Bytes are the successful transfers' totals.
	Objects int64 `json:"objects"`
	Bytes   int64 `json:"bytes"`
}

// Stats returns a snapshot.
func (e *Exchange) Stats() ExchangeStats {
	return ExchangeStats{
		Hits:    e.hits.Value(),
		Misses:  e.misses.Value(),
		Corrupt: e.corrupt.Value(),
		Errored: e.errored.Value(),
		Objects: e.objects.Value(),
		Bytes:   e.bytes.Value(),
	}
}
