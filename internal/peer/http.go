package peer

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/gear-image/gear/internal/clientopt"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/telemetry"
)

// HTTP wire protocol. The tracker speaks four verbs, styled after the
// Gear Registry's handlers (newline-framed text bodies, status codes as
// verdicts):
//
//	POST /peer/announce  <- first line holder id, then one fingerprint
//	                        per line                     -> "ok n=<applied>"
//	POST /peer/withdraw  <- same framing                 -> "ok n=<applied>"
//	POST /peer/locate    <- first line requester id ("-" = none), then
//	                        one fingerprint per line
//	                     -> per fingerprint in order:
//	                        "<fingerprint> <h1,h2,...|->"
//	POST /peer/served    <- "peer=<objects>/<bytes> registry=<objects>/<bytes>"
//	GET  /peer/stats     -> one "key=value" token per field (see serveStats)
//
// A peer Server, meanwhile, speaks the registry's own wire protocol
// (GET /gear/query/{fp}, GET /gear/download/{fp}, POST /gear/batch) via
// ServerHandler, so a stock gearregistry.Client can download from a
// peer exactly as it would from the registry.

// noExclude is the locate body's "no requester to exclude" marker.
const noExclude = "-"

// TrackerHandler adapts a Tracker to HTTP.
type TrackerHandler struct {
	t *Tracker
}

var _ http.Handler = (*TrackerHandler)(nil)

// NewTrackerHandler wraps t.
func NewTrackerHandler(t *Tracker) *TrackerHandler { return &TrackerHandler{t: t} }

// ServeHTTP implements http.Handler.
func (h *TrackerHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/peer/announce":
		h.serveMembership(w, r, h.t.Announce)
	case "/peer/withdraw":
		h.serveMembership(w, r, h.t.Withdraw)
	case "/peer/locate":
		h.serveLocate(w, r)
	case "/peer/served":
		h.serveServed(w, r)
	case "/peer/stats":
		h.serveStats(w, r)
	case "/peer/metrics":
		telemetry.Handler(h.t).ServeHTTP(w, r)
	default:
		http.NotFound(w, r)
	}
}

// serveMembership handles announce and withdraw, which share framing.
func (h *TrackerHandler) serveMembership(w http.ResponseWriter, r *http.Request,
	apply func(holder string, fps ...hashing.Fingerprint) error) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	holder, fps, err := parseMembershipBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := apply(holder, fps...); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "ok n=%d\n", len(fps))
}

func (h *TrackerHandler) serveLocate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	exclude, fps, err := parseMembershipBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if exclude == noExclude {
		exclude = ""
	}
	w.Header().Set("Content-Type", "text/plain")
	for _, fp := range fps {
		holders := h.t.Locate(fp, exclude)
		list := noExclude
		if len(holders) > 0 {
			list = strings.Join(holders, ",")
		}
		fmt.Fprintf(w, "%s %s\n", fp, list)
	}
}

func (h *TrackerHandler) serveServed(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var po, ro int
	var pb, rb int64
	if _, err := fmt.Sscanf(strings.TrimSpace(string(body)),
		"peer=%d/%d registry=%d/%d", &po, &pb, &ro, &rb); err != nil {
		http.Error(w, fmt.Sprintf("peer: served: parse %q: %v", body, err), http.StatusBadRequest)
		return
	}
	if po < 0 || pb < 0 || ro < 0 || rb < 0 {
		http.Error(w, "peer: served: negative counter", http.StatusBadRequest)
		return
	}
	h.t.ReportServed(po, pb, ro, rb)
	fmt.Fprintln(w, "ok")
}

func (h *TrackerHandler) serveStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	s := h.t.Stats()
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintf(w, "fingerprints=%d holders=%d announces=%d withdraws=%d peer=%d/%d registry=%d/%d\n",
		s.Fingerprints, s.Holders, s.Announces, s.Withdraws,
		s.PeerObjects, s.PeerBytes, s.RegistryObjects, s.RegistryBytes)
}

// parseMembershipBody decodes the shared announce/withdraw/locate
// framing: a holder (or requester) id line followed by fingerprint
// lines. The id must be a single whitespace-free token without commas
// (locate responses join holders with commas).
func parseMembershipBody(body io.Reader) (holder string, fps []hashing.Fingerprint, err error) {
	data, err := io.ReadAll(body)
	if err != nil {
		return "", nil, fmt.Errorf("peer: read body: %w", err)
	}
	lines := strings.Split(string(data), "\n")
	holder = strings.TrimSpace(lines[0])
	if err := validateHolderID(holder); err != nil {
		return "", nil, err
	}
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fp := hashing.Fingerprint(line)
		if err := fp.Validate(); err != nil {
			return "", nil, fmt.Errorf("peer: %w", err)
		}
		fps = append(fps, fp)
	}
	return holder, fps, nil
}

// validateHolderID rejects ids the wire framing cannot carry.
func validateHolderID(id string) error {
	if id == "" {
		return errors.New("peer: empty holder id")
	}
	if strings.ContainsAny(id, " \t\n\r,") {
		return fmt.Errorf("peer: holder id %q contains whitespace or comma", id)
	}
	return nil
}

// TrackerClient talks to a remote tracker over HTTP. It satisfies
// Locator, so a store's exchange can run against an out-of-process
// tracker unchanged.
type TrackerClient struct {
	base string
	http *http.Client
	opts clientopt.Options
}

var _ Locator = (*TrackerClient)(nil)

// NewTrackerClient returns a client for the tracker at baseURL. If hc
// is nil, http.DefaultClient is used.
func NewTrackerClient(baseURL string, hc *http.Client) *TrackerClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &TrackerClient{base: strings.TrimSuffix(baseURL, "/"), http: hc}
}

// NewTrackerClientWithOptions is NewTrackerClient configured by the
// shared clientopt.Options: Timeout shapes the transport, and
// Retries/Backoff re-issue requests that fail at the transport layer
// (protocol-level rejections are verdicts and are never retried).
func NewTrackerClientWithOptions(baseURL string, o clientopt.Options) *TrackerClient {
	c := NewTrackerClient(baseURL, o.HTTPClient())
	c.opts = o
	return c
}

// post issues one POST with the client's retry policy. Only transport
// errors retry; any HTTP response — success or failure — is final.
func (c *TrackerClient) post(path, body string) (*http.Response, error) {
	var lastErr error
	for i := 0; i < c.opts.Attempts(); i++ {
		if i > 0 {
			c.opts.Sleep(i)
		}
		resp, err := c.http.Post(c.base+path, "text/plain", strings.NewReader(body))
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Announce mirrors Tracker.Announce over HTTP.
func (c *TrackerClient) Announce(holder string, fps ...hashing.Fingerprint) error {
	return c.postMembership("/peer/announce", holder, fps)
}

// Withdraw mirrors Tracker.Withdraw over HTTP.
func (c *TrackerClient) Withdraw(holder string, fps ...hashing.Fingerprint) error {
	return c.postMembership("/peer/withdraw", holder, fps)
}

func (c *TrackerClient) postMembership(path, holder string, fps []hashing.Fingerprint) error {
	body := membershipBody(holder, fps)
	resp, err := c.post(path, body)
	if err != nil {
		return fmt.Errorf("peer client: %s: %w", path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer client: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(out)))
	}
	return nil
}

// Locate implements Locator. Transport or protocol errors yield no
// holders: the caller falls back to the registry, which is always
// correct, just more expensive.
func (c *TrackerClient) Locate(fp hashing.Fingerprint, exclude string) []string {
	all, err := c.LocateBatch([]hashing.Fingerprint{fp}, exclude)
	if err != nil || len(all) != 1 {
		return nil
	}
	return all[0]
}

// LocateBatch asks for the holders of several fingerprints in one round
// trip, returned in request order.
func (c *TrackerClient) LocateBatch(fps []hashing.Fingerprint, exclude string) ([][]string, error) {
	if exclude == "" {
		exclude = noExclude
	}
	body := membershipBody(exclude, fps)
	resp, err := c.post("/peer/locate", body)
	if err != nil {
		return nil, fmt.Errorf("peer client: locate: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("peer client: locate: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer client: locate: %s: %s", resp.Status, strings.TrimSpace(string(out)))
	}
	holders, got, err := parseLocateResponse(out)
	if err != nil {
		return nil, fmt.Errorf("peer client: locate: %w", err)
	}
	if len(got) != len(fps) {
		return nil, fmt.Errorf("peer client: locate: got %d lines, want %d", len(got), len(fps))
	}
	for i, fp := range got {
		if fp != fps[i] {
			return nil, fmt.Errorf("peer client: locate: line %d is %s, want %s", i, fp, fps[i])
		}
	}
	return holders, nil
}

// ReportServed mirrors Tracker.ReportServed over HTTP.
func (c *TrackerClient) ReportServed(peerObjects int, peerBytes int64, registryObjects int, registryBytes int64) error {
	body := fmt.Sprintf("peer=%d/%d registry=%d/%d\n", peerObjects, peerBytes, registryObjects, registryBytes)
	resp, err := c.post("/peer/served", body)
	if err != nil {
		return fmt.Errorf("peer client: served: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer client: served: %s: %s", resp.Status, strings.TrimSpace(string(out)))
	}
	return nil
}

// Stats fetches the tracker's snapshot.
func (c *TrackerClient) Stats() (TrackerStats, error) {
	resp, err := c.http.Get(c.base + "/peer/stats")
	if err != nil {
		return TrackerStats{}, fmt.Errorf("peer client: stats: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return TrackerStats{}, fmt.Errorf("peer client: stats: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return TrackerStats{}, fmt.Errorf("peer client: stats: %s: %s", resp.Status, strings.TrimSpace(string(out)))
	}
	var s TrackerStats
	if _, err := fmt.Sscanf(strings.TrimSpace(string(out)),
		"fingerprints=%d holders=%d announces=%d withdraws=%d peer=%d/%d registry=%d/%d",
		&s.Fingerprints, &s.Holders, &s.Announces, &s.Withdraws,
		&s.PeerObjects, &s.PeerBytes, &s.RegistryObjects, &s.RegistryBytes); err != nil {
		return TrackerStats{}, fmt.Errorf("peer client: stats: parse %q: %w", out, err)
	}
	return s, nil
}

func membershipBody(holder string, fps []hashing.Fingerprint) string {
	var b strings.Builder
	b.WriteString(holder)
	b.WriteByte('\n')
	for _, fp := range fps {
		b.WriteString(string(fp))
		b.WriteByte('\n')
	}
	return b.String()
}

// parseLocateResponse decodes the /peer/locate framing: one
// "<fingerprint> <h1,h2,...|->" line per requested fingerprint.
func parseLocateResponse(body []byte) (holders [][]string, fps []hashing.Fingerprint, err error) {
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, nil, fmt.Errorf("malformed locate line %q", line)
		}
		fp := hashing.Fingerprint(fields[0])
		if verr := fp.Validate(); verr != nil {
			return nil, nil, fmt.Errorf("locate line %q: %w", line, verr)
		}
		fps = append(fps, fp)
		if fields[1] == noExclude {
			holders = append(holders, nil)
			continue
		}
		hs := strings.Split(fields[1], ",")
		for _, h := range hs {
			if err := validateHolderID(h); err != nil {
				return nil, nil, fmt.Errorf("locate line %q: %w", line, err)
			}
		}
		holders = append(holders, hs)
	}
	return holders, fps, nil
}

// ServerHandler adapts a peer Server to the Gear Registry's HTTP wire
// protocol, so a stock gearregistry.Client can query and download from
// a peer. Uploads are rejected: peers only re-serve what their own
// fetches cached.
type ServerHandler struct {
	srv *Server
}

var _ http.Handler = (*ServerHandler)(nil)

// NewServerHandler wraps srv.
func NewServerHandler(srv *Server) *ServerHandler { return &ServerHandler{srv: srv} }

// ServeHTTP implements http.Handler.
func (h *ServerHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/gear/batch" {
		h.serveBatch(w, r)
		return
	}
	rest, found := strings.CutPrefix(r.URL.Path, "/gear/")
	if !found {
		http.NotFound(w, r)
		return
	}
	verb, raw, found := strings.Cut(rest, "/")
	if !found || raw == "" {
		http.NotFound(w, r)
		return
	}
	fp := hashing.Fingerprint(raw)
	switch verb {
	case "query":
		if r.Method != http.MethodGet {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		present, err := h.srv.Query(fp)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !present {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	case "download":
		if r.Method != http.MethodGet {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		data, compressed, err := h.srv.downloadWire(fp)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, gearregistry.ErrNotFound) {
				status = http.StatusNotFound
			} else if errors.Is(err, hashing.ErrMalformed) {
				status = http.StatusBadRequest
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if compressed {
			w.Header().Set("X-Gear-Encoding", "gzip")
		}
		_, _ = w.Write(data)
	case "upload":
		http.Error(w, "peer: peers do not accept uploads", http.StatusMethodNotAllowed)
	default:
		http.NotFound(w, r)
	}
}

// serveBatch speaks the registry's /gear/batch framing over the peer's
// cache: per object a "<fingerprint> <storedLen> <raw|gzip>\n" header
// followed by the stored bytes, all-or-nothing.
func (h *ServerHandler) serveBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	type object struct {
		fp         hashing.Fingerprint
		stored     []byte
		compressed bool
	}
	var objects []object
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fp := hashing.Fingerprint(line)
		stored, compressed, err := h.srv.downloadWire(fp)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, gearregistry.ErrNotFound) {
				status = http.StatusNotFound
			} else if errors.Is(err, hashing.ErrMalformed) {
				status = http.StatusBadRequest
			}
			http.Error(w, err.Error(), status)
			return
		}
		objects = append(objects, object{fp, stored, compressed})
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	for _, o := range objects {
		enc := "raw"
		if o.compressed {
			enc = "gzip"
		}
		fmt.Fprintf(w, "%s %d %s\n", o.fp, len(o.stored), enc)
		_, _ = w.Write(o.stored)
	}
}
