package peer

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/gear-image/gear/internal/cache"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/telemetry"
)

func fpOf(s string) hashing.Fingerprint { return hashing.FingerprintBytes([]byte(s)) }

func newCache(t *testing.T, capacity int64) *cache.Cache {
	t.Helper()
	c, err := cache.New(capacity, cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTrackerAnnounceLocateWithdraw(t *testing.T) {
	tr := NewTracker()
	a, b := fpOf("file a"), fpOf("file b")

	if err := tr.Announce("node0", a, b); err != nil {
		t.Fatal(err)
	}
	if err := tr.Announce("node1", a); err != nil {
		t.Fatal(err)
	}
	if err := tr.Announce("node1", a); err != nil { // duplicate: no-op
		t.Fatal(err)
	}
	if err := tr.Announce("", a); err == nil {
		t.Error("empty holder id accepted")
	}
	if err := tr.Announce("node2", hashing.Fingerprint("nothex")); err == nil {
		t.Error("malformed fingerprint accepted")
	}

	// Locate excludes the requester and is deterministic per fingerprint.
	got := tr.Locate(a, "node0")
	if !reflect.DeepEqual(got, []string{"node1"}) {
		t.Errorf("Locate(a, node0) = %v, want [node1]", got)
	}
	first := tr.Locate(a, "")
	if len(first) != 2 {
		t.Fatalf("Locate(a) = %v, want 2 holders", first)
	}
	for i := 0; i < 5; i++ {
		if again := tr.Locate(a, ""); !reflect.DeepEqual(again, first) {
			t.Fatalf("Locate not deterministic: %v then %v", first, again)
		}
	}
	if got := tr.Locate(fpOf("unknown"), ""); len(got) != 0 {
		t.Errorf("Locate(unknown) = %v, want none", got)
	}

	if s := tr.Stats(); s.Fingerprints != 2 || s.Holders != 2 || s.Announces != 3 {
		t.Errorf("stats = %+v, want 2 fingerprints / 2 holders / 3 announces", s)
	}

	if err := tr.Withdraw("node0", a, b); err != nil {
		t.Fatal(err)
	}
	if err := tr.Withdraw("node0", a); err != nil { // already gone: no-op
		t.Fatal(err)
	}
	if got := tr.Locate(a, ""); !reflect.DeepEqual(got, []string{"node1"}) {
		t.Errorf("after withdraw Locate(a) = %v, want [node1]", got)
	}
	if s := tr.Stats(); s.Fingerprints != 1 || s.Holders != 1 || s.Withdraws != 2 {
		t.Errorf("stats = %+v, want 1 fingerprint / 1 holder / 2 withdraws", s)
	}
}

func TestTrackerHooksMirrorCacheMembership(t *testing.T) {
	tr := NewTracker()
	c := newCache(t, 64)
	c.SetHooks(tr.Hooks("node0"))

	var fps []hashing.Fingerprint
	for i := 0; i < 8; i++ {
		data := []byte(fmt.Sprintf("object %02d padpad", i)) // 16 B each
		fp := hashing.FingerprintBytes(data)
		fps = append(fps, fp)
		if _, err := c.Put(fp, data); err != nil {
			t.Fatal(err)
		}
	}
	for _, fp := range fps {
		cached := c.Contains(fp)
		located := len(tr.Locate(fp, "")) > 0
		if cached != located {
			t.Errorf("%s: cached=%v but tracker located=%v", fp, cached, located)
		}
	}
	if s := tr.Stats(); s.Withdraws == 0 {
		t.Error("capacity pressure produced no withdraws")
	}
}

func TestServerServesAndAccounts(t *testing.T) {
	c := newCache(t, 0)
	data := []byte("served by a neighbour")
	fp := hashing.FingerprintBytes(data)
	if _, err := c.Put(fp, data); err != nil {
		t.Fatal(err)
	}
	s := NewServer("node0", c, ServerOptions{})

	if ok, err := s.Query(fp); err != nil || !ok {
		t.Errorf("Query(%s) = %v, %v; want true", fp, ok, err)
	}
	if ok, err := s.Query(fpOf("absent")); err != nil || ok {
		t.Errorf("Query(absent) = %v, %v; want false", ok, err)
	}
	if _, err := s.Query(hashing.Fingerprint("nothex")); err == nil {
		t.Error("malformed query accepted")
	}

	got, wire, err := s.Download(fp)
	if err != nil || string(got) != string(data) || wire != int64(len(data)) {
		t.Errorf("Download = %q/%d/%v, want %q/%d", got, wire, err, data, len(data))
	}
	if _, _, err := s.Download(fpOf("absent")); !errors.Is(err, gearregistry.ErrNotFound) {
		t.Errorf("Download(absent) err = %v, want ErrNotFound", err)
	}

	payloads, _, err := s.DownloadBatch([]hashing.Fingerprint{fp, fp})
	if err != nil || len(payloads) != 2 {
		t.Fatalf("DownloadBatch = %v, %v", payloads, err)
	}
	if _, _, err := s.DownloadBatch([]hashing.Fingerprint{fp, fpOf("absent")}); err == nil {
		t.Error("batch with absent object did not fail")
	}

	st := s.Stats()
	if st.ObjectsServed != 3 || st.BytesServed != 3*int64(len(data)) {
		t.Errorf("stats = %+v, want 3 objects / %d bytes", st, 3*len(data))
	}
	if st.MaxConcurrent != DefaultMaxConcurrent {
		t.Errorf("MaxConcurrent = %d, want default %d", st.MaxConcurrent, DefaultMaxConcurrent)
	}
}

// TestServerCompressedWireMatchesRegistry pins the invariant the fleet
// experiment's byte-parity check relies on: a compressing peer serves
// exactly the wire bytes a compressing registry would for the same file.
func TestServerCompressedWireMatchesRegistry(t *testing.T) {
	data := bytes.Repeat([]byte("the same file costs the same wire bytes wherever it is served from\n"), 20)
	fp := hashing.FingerprintBytes(data)

	reg := gearregistry.New(gearregistry.Options{Compress: true})
	if err := reg.Upload(fp, data); err != nil {
		t.Fatal(err)
	}
	_, regWire, err := reg.Download(fp)
	if err != nil {
		t.Fatal(err)
	}

	c := newCache(t, 0)
	if _, err := c.Put(fp, data); err != nil {
		t.Fatal(err)
	}
	s := NewServer("node0", c, ServerOptions{Compress: true})
	payload, peerWire, err := s.Download(fp)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != string(data) {
		t.Error("compressed serve corrupted payload")
	}
	if peerWire != regWire {
		t.Errorf("peer wire = %d, registry wire = %d; must match", peerWire, regWire)
	}
	if peerWire >= int64(len(data)) {
		t.Errorf("wire %d not smaller than payload %d", peerWire, len(data))
	}
}

// TestServerBoundedConcurrency exhausts the serve slots and checks a
// further download waits until one frees up.
func TestServerBoundedConcurrency(t *testing.T) {
	c := newCache(t, 0)
	data := []byte("bounded")
	fp := hashing.FingerprintBytes(data)
	if _, err := c.Put(fp, data); err != nil {
		t.Fatal(err)
	}
	s := NewServer("node0", c, ServerOptions{MaxConcurrent: 2})

	s.acquire()
	s.acquire()
	done := make(chan error, 1)
	go func() {
		_, _, err := s.Download(fp)
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("download proceeded past the concurrency bound")
	case <-time.After(20 * time.Millisecond):
	}
	s.release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("download never acquired the freed slot")
	}
	s.release()
}

// flakyServer is a FileServer that errors or corrupts on demand.
type flakyServer struct {
	data    map[hashing.Fingerprint][]byte
	corrupt bool
	fail    bool
	calls   int
}

func (f *flakyServer) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	f.calls++
	if f.fail {
		return nil, 0, errors.New("peer unreachable")
	}
	d, ok := f.data[fp]
	if !ok {
		return nil, 0, gearregistry.ErrNotFound
	}
	if f.corrupt {
		d = append([]byte("corrupted:"), d...)
	}
	return d, int64(len(d)), nil
}

func TestExchangeSkipsBadHoldersAndVerifies(t *testing.T) {
	data := []byte("the payload peers exchange")
	fp := hashing.FingerprintBytes(data)

	tr := NewTracker()
	for _, id := range []string{"dead", "corrupt", "good", "me"} {
		if err := tr.Announce(id, fp); err != nil {
			t.Fatal(err)
		}
	}
	net := NewStaticNetwork()
	dead := &flakyServer{fail: true}
	bad := &flakyServer{data: map[hashing.Fingerprint][]byte{fp: data}, corrupt: true}
	good := &flakyServer{data: map[hashing.Fingerprint][]byte{fp: data}}
	net.Add("dead", dead)
	net.Add("corrupt", bad)
	net.Add("good", good)
	// "me" is announced but absent from the network: also skipped.

	ex := NewExchange("me", tr, net)
	got, wire, ok := ex.FetchPeer(fp)
	if !ok || string(got) != string(data) || wire != int64(len(data)) {
		t.Fatalf("FetchPeer = %q/%d/%v, want payload from the good holder", got, wire, ok)
	}
	if good.calls != 1 {
		t.Errorf("good holder served %d times, want 1", good.calls)
	}
	st := ex.Stats()
	if st.Hits != 1 || st.Objects != 1 || st.Bytes != int64(len(data)) {
		t.Errorf("stats = %+v, want 1 hit / 1 object / %d bytes", st, len(data))
	}
	if st.Corrupt != int64(bad.calls) {
		t.Errorf("corrupt skips = %d, corrupt holder served %d times", st.Corrupt, bad.calls)
	}
	if st.Errored != int64(dead.calls) {
		t.Errorf("errored skips = %d, dead holder called %d times", st.Errored, dead.calls)
	}

	// No holder can serve: miss, never corrupt data.
	if _, _, ok := ex.FetchPeer(fpOf("nobody has this")); ok {
		t.Error("FetchPeer hit on a file nobody holds")
	}
	if st := ex.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
}

func TestTrackerHTTPRoundTrip(t *testing.T) {
	tr := NewTracker()
	srv := httptest.NewServer(NewTrackerHandler(tr))
	defer srv.Close()
	client := NewTrackerClient(srv.URL, nil)

	a, b := fpOf("http a"), fpOf("http b")
	if err := client.Announce("node0", a, b); err != nil {
		t.Fatal(err)
	}
	if err := client.Announce("node1", a); err != nil {
		t.Fatal(err)
	}
	if err := client.Announce("bad holder", a); err == nil {
		t.Error("holder id with space accepted over HTTP")
	}

	holders, err := client.LocateBatch([]hashing.Fingerprint{a, b, fpOf("absent")}, "node1")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"node0"}, {"node0"}, nil}
	if !reflect.DeepEqual(holders, want) {
		t.Errorf("LocateBatch = %v, want %v", holders, want)
	}
	if got := client.Locate(a, ""); len(got) != 2 {
		t.Errorf("Locate(a) = %v, want both holders", got)
	}

	if err := client.Withdraw("node0", b); err != nil {
		t.Fatal(err)
	}
	if got := client.Locate(b, ""); len(got) != 0 {
		t.Errorf("Locate(b) after withdraw = %v, want none", got)
	}

	if err := client.ReportServed(7, 700, 3, 300); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeerObjects != 7 || stats.PeerBytes != 700 ||
		stats.RegistryObjects != 3 || stats.RegistryBytes != 300 {
		t.Errorf("served split = %+v, want 7/700 peer and 3/300 registry", stats)
	}
	if local := tr.Stats(); local != stats {
		t.Errorf("HTTP stats %+v != in-process stats %+v", stats, local)
	}
}

// TestServerHandlerSpeaksRegistryProtocol drives a stock
// gearregistry.Client against a peer's HTTP export.
func TestServerHandlerSpeaksRegistryProtocol(t *testing.T) {
	c := newCache(t, 0)
	data := bytes.Repeat([]byte("fetched from a peer over the registry wire protocol\n"), 20)
	fp := hashing.FingerprintBytes(data)
	if _, err := c.Put(fp, data); err != nil {
		t.Fatal(err)
	}
	peerSrv := NewServer("node0", c, ServerOptions{Compress: true})
	srv := httptest.NewServer(NewServerHandler(peerSrv))
	defer srv.Close()
	client := gearregistry.NewClient(srv.URL, nil)

	if ok, err := client.Query(fp); err != nil || !ok {
		t.Errorf("Query = %v, %v; want true", ok, err)
	}
	got, wire, err := client.Download(fp)
	if err != nil || string(got) != string(data) {
		t.Errorf("Download = %q, %v; want the cached payload", got, err)
	}
	if wire >= int64(len(data)) {
		t.Errorf("wire %d not compressed below payload %d", wire, len(data))
	}
	if _, _, err := client.Download(fpOf("absent")); !errors.Is(err, gearregistry.ErrNotFound) {
		t.Errorf("Download(absent) err = %v, want ErrNotFound", err)
	}
	payloads, _, err := client.DownloadBatch([]hashing.Fingerprint{fp})
	if err != nil || len(payloads) != 1 || string(payloads[0]) != string(data) {
		t.Errorf("DownloadBatch = %v, %v; want the cached payload", payloads, err)
	}
	if err := client.Upload(fp, data); err == nil {
		t.Error("peer accepted an upload")
	}
}

// TestTrackerMetricsEndpoint: /peer/metrics serves the tracker's
// unified telemetry snapshot, and it reconciles with the legacy
// TrackerStats view.
func TestTrackerMetricsEndpoint(t *testing.T) {
	tr := NewTracker()
	tr.Announce("node0", fpOf("m a"), fpOf("m b"))
	tr.Announce("node1", fpOf("m a"))
	tr.ReportServed(3, 4096, 2, 1024)
	srv := httptest.NewServer(NewTrackerHandler(tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/peer/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := telemetry.DecodeSnapshot(body)
	if err != nil {
		t.Fatalf("decode /peer/metrics: %v", err)
	}
	st := tr.Stats()
	if got := snap.Gauge("tracker.fingerprints"); got != int64(st.Fingerprints) {
		t.Errorf("tracker.fingerprints = %d, legacy view %d", got, st.Fingerprints)
	}
	if got := snap.Counter("tracker.announces"); got != st.Announces {
		t.Errorf("tracker.announces = %d, legacy view %d", got, st.Announces)
	}
	if got := snap.Counter("tracker.peer.bytes"); got != st.PeerBytes {
		t.Errorf("tracker.peer.bytes = %d, legacy view %d", got, st.PeerBytes)
	}
}
