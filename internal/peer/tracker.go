// Package peer implements peer-to-peer Gear-file distribution inside a
// cluster, the EdgePier insight applied to Gear's format: because every
// level-1 cache entry is an independent, fingerprint-verified object,
// any node that holds a Gear file can serve it to its neighbours over
// the cheap LAN, sparing the registry's WAN egress on fleet rollouts.
//
// Three pieces cooperate:
//
//   - a Tracker maps fingerprint → holders; nodes announce files as
//     their caches admit them and withdraw them on eviction (wired via
//     cache.Hooks);
//   - a Server exports a node's level-1 cache over the registry's own
//     query/download/batch verb set, with a bounded concurrent-serve
//     limit and bytes-served accounting;
//   - an Exchange is the fetch-side: locate holders, download from one,
//     verify the fingerprint, and report a miss so the caller falls
//     back to the registry.
//
// Every byte a peer serves is verified against its content address by
// the receiver, so a corrupt or malicious peer degrades to a registry
// fetch, never to corrupt data.
package peer

import (
	"fmt"
	"sync"

	"github.com/gear-image/gear/internal/cache"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/telemetry"
)

// Tracker maintains the cluster's fingerprint → holders map. It is the
// peer-distribution analogue of the registry's query verb: instead of
// "is this file stored?", it answers "which of my neighbours already
// has it?". Safe for concurrent use.
type Tracker struct {
	mu      sync.Mutex
	holders map[hashing.Fingerprint][]string // announce order
	files   map[string]int                   // holder id → #fingerprints held

	// Telemetry handles are the counters' only storage; the membership
	// gauges mirror the map sizes and are maintained under mu.
	tele                 *telemetry.Registry
	fingerprints         *telemetry.Gauge
	holdersGauge         *telemetry.Gauge
	announces, withdraws *telemetry.Counter

	// Served-traffic reports, split by source. Nodes report after a
	// deployment so cluster operators can see how much of the rollout
	// the peers absorbed (gearctl peers).
	peerObjects, registryObjects *telemetry.Counter
	peerBytes, registryBytes     *telemetry.Counter
}

// NewTracker returns an empty tracker publishing into a private
// telemetry registry.
func NewTracker() *Tracker {
	return NewTrackerWithTelemetry(nil)
}

// NewTrackerWithTelemetry is NewTracker publishing tracker.* metrics
// into reg (nil creates a private registry).
func NewTrackerWithTelemetry(reg *telemetry.Registry) *Tracker {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Tracker{
		holders:         make(map[hashing.Fingerprint][]string),
		files:           make(map[string]int),
		tele:            reg,
		fingerprints:    reg.Gauge("tracker.fingerprints"),
		holdersGauge:    reg.Gauge("tracker.holders"),
		announces:       reg.Counter("tracker.announces"),
		withdraws:       reg.Counter("tracker.withdraws"),
		peerObjects:     reg.Counter("tracker.peer.objects"),
		peerBytes:       reg.Counter("tracker.peer.bytes"),
		registryObjects: reg.Counter("tracker.registry.objects"),
		registryBytes:   reg.Counter("tracker.registry.bytes"),
	}
}

// Telemetry returns the metrics registry this tracker publishes into.
func (t *Tracker) Telemetry() *telemetry.Registry { return t.tele }

// StatsSnapshot returns the unified telemetry snapshot for this
// tracker — what the /peer/metrics endpoint serves.
func (t *Tracker) StatsSnapshot() telemetry.Snapshot { return t.tele.Snapshot() }

// Snapshot implements telemetry.Snapshotter.
func (t *Tracker) Snapshot() telemetry.Snapshot { return t.StatsSnapshot() }

// Announce records that holder now has the given Gear files. Announcing
// a file the tracker already maps to the holder is a no-op.
func (t *Tracker) Announce(holder string, fps ...hashing.Fingerprint) error {
	if holder == "" {
		return fmt.Errorf("peer: announce: empty holder id")
	}
	for _, fp := range fps {
		if err := fp.Validate(); err != nil {
			return fmt.Errorf("peer: announce: %w", err)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, fp := range fps {
		if holderIndex(t.holders[fp], holder) >= 0 {
			continue
		}
		if len(t.holders[fp]) == 0 {
			t.fingerprints.Add(1)
		}
		t.holders[fp] = append(t.holders[fp], holder)
		if t.files[holder] == 0 {
			t.holdersGauge.Add(1)
		}
		t.files[holder]++
		t.announces.Inc()
	}
	return nil
}

// Withdraw records that holder no longer has the given Gear files (its
// cache evicted them). Withdrawing an unannounced file is a no-op —
// eviction hooks may race admit callbacks, and the fetch path verifies
// and falls back anyway, so the tracker tolerates a stale view.
func (t *Tracker) Withdraw(holder string, fps ...hashing.Fingerprint) error {
	if holder == "" {
		return fmt.Errorf("peer: withdraw: empty holder id")
	}
	for _, fp := range fps {
		if err := fp.Validate(); err != nil {
			return fmt.Errorf("peer: withdraw: %w", err)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, fp := range fps {
		hs := t.holders[fp]
		i := holderIndex(hs, holder)
		if i < 0 {
			continue
		}
		t.holders[fp] = append(hs[:i], hs[i+1:]...)
		if len(t.holders[fp]) == 0 {
			delete(t.holders, fp)
			t.fingerprints.Add(-1)
		}
		if t.files[holder]--; t.files[holder] == 0 {
			delete(t.files, holder)
			t.holdersGauge.Add(-1)
		}
		t.withdraws.Inc()
	}
	return nil
}

// Locate returns the holders of fp, excluding the requester itself. The
// list is rotated deterministically by fingerprint so different files
// start at different holders and serve load spreads across the cluster
// without coordination.
func (t *Tracker) Locate(fp hashing.Fingerprint, exclude string) []string {
	t.mu.Lock()
	hs := t.holders[fp]
	out := make([]string, 0, len(hs))
	for _, h := range hs {
		if h != exclude {
			out = append(out, h)
		}
	}
	t.mu.Unlock()
	if len(out) > 1 && len(fp) > 0 {
		start := int(fp[len(fp)-1]) % len(out)
		rotated := make([]string, 0, len(out))
		rotated = append(rotated, out[start:]...)
		rotated = append(rotated, out[:start]...)
		out = rotated
	}
	return out
}

// Hooks returns cache membership hooks that keep the tracker's view of
// holder's level-1 cache current: admits announce, evictions withdraw.
// Install with cache.SetHooks before the cache sees traffic.
func (t *Tracker) Hooks(holder string) cache.Hooks {
	return cache.Hooks{
		OnAdmit: func(fp hashing.Fingerprint, _ int64) {
			_ = t.Announce(holder, fp)
		},
		OnEvict: func(fp hashing.Fingerprint, _ int64) {
			_ = t.Withdraw(holder, fp)
		},
	}
}

// ReportServed accumulates a node's deployment traffic split: how many
// objects/bytes arrived from peers versus from the registry.
func (t *Tracker) ReportServed(peerObjects int, peerBytes int64, registryObjects int, registryBytes int64) {
	t.peerObjects.Add(int64(peerObjects))
	t.peerBytes.Add(peerBytes)
	t.registryObjects.Add(int64(registryObjects))
	t.registryBytes.Add(registryBytes)
}

// TrackerStats is a snapshot of the tracker's view of the cluster: a
// view over the tracker.* telemetry metrics.
type TrackerStats struct {
	// Fingerprints is how many distinct Gear files have at least one
	// holder right now.
	Fingerprints int `json:"fingerprints"`
	// Holders is how many nodes currently hold at least one file.
	Holders int `json:"holders"`
	// Announces and Withdraws count membership transitions ever applied.
	Announces int64 `json:"announces"`
	Withdraws int64 `json:"withdraws"`
	// Peer*/Registry* aggregate the traffic splits nodes reported.
	PeerObjects     int64 `json:"peerObjects"`
	PeerBytes       int64 `json:"peerBytes"`
	RegistryObjects int64 `json:"registryObjects"`
	RegistryBytes   int64 `json:"registryBytes"`
}

// Stats returns a snapshot.
func (t *Tracker) Stats() TrackerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TrackerStats{
		Fingerprints:    len(t.holders),
		Holders:         len(t.files),
		Announces:       t.announces.Value(),
		Withdraws:       t.withdraws.Value(),
		PeerObjects:     t.peerObjects.Value(),
		PeerBytes:       t.peerBytes.Value(),
		RegistryObjects: t.registryObjects.Value(),
		RegistryBytes:   t.registryBytes.Value(),
	}
}

func holderIndex(hs []string, holder string) int {
	for i, h := range hs {
		if h == holder {
			return i
		}
	}
	return -1
}
