package peer

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/gear-image/gear/internal/hashing"
)

// FuzzTrackerHTTP: the announce/withdraw/locate handlers must never
// panic on arbitrary bodies, every accepted announce must leave the
// tracker consistent, and every 200 locate response must parse with the
// client framing and name only holders the tracker actually tracks.
func FuzzTrackerHTTP(f *testing.F) {
	known := hashing.FingerprintBytes([]byte("known object"))

	f.Add("node0\n" + string(known) + "\n")
	f.Add("node0\n" + string(known) + "\n" + string(known) + "\n") // duplicates
	f.Add("-\n" + string(known) + "\n")                            // locate's no-exclude marker
	f.Add("node0\n")                                               // no fingerprints
	f.Add("\n" + string(known) + "\n")                             // empty holder
	f.Add("two words\n" + string(known) + "\n")                    // holder with space
	f.Add("with,comma\n" + string(known) + "\n")                   // holder with comma
	f.Add("node0\nzzzz\n")                                         // malformed fingerprint
	f.Add("node0\nd41d8cd98f00b204e9800998ecf8427e-c2\n")          // collision id form
	f.Add("")
	f.Add("\n\n\n")
	f.Add(string(known) + " node0,node1\n") // response-shaped input

	f.Fuzz(func(t *testing.T, body string) {
		tr := NewTracker()
		if err := tr.Announce("seed", known); err != nil {
			t.Fatal(err)
		}
		h := NewTrackerHandler(tr)

		for _, path := range []string{"/peer/announce", "/peer/withdraw", "/peer/locate"} {
			req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body)))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)

			switch rec.Code {
			case http.StatusOK:
				if path != "/peer/locate" {
					continue
				}
				holders, fps, err := parseLocateResponse(rec.Body.Bytes())
				if err != nil {
					t.Fatalf("200 locate response does not parse: %v", err)
				}
				if len(holders) != len(fps) {
					t.Fatalf("%d holder lists for %d fingerprints", len(holders), len(fps))
				}
				for i, fp := range fps {
					if err := fp.Validate(); err != nil {
						t.Fatalf("located invalid fingerprint %q", fp)
					}
					for _, holder := range holders[i] {
						if err := validateHolderID(holder); err != nil {
							t.Fatalf("located unframeable holder %q: %v", holder, err)
						}
					}
				}
			case http.StatusBadRequest:
				// Rejected bodies are fine; the handler just must not panic
				// or apply a partial update.
			default:
				t.Fatalf("%s: unexpected status %d", path, rec.Code)
			}
		}

		// Whatever the fuzzer announced, the tracker's invariants hold:
		// stats counters are consistent and the seeded file stays located.
		s := tr.Stats()
		if s.Fingerprints < 0 || s.Holders < 0 || s.Announces < s.Withdraws-1 {
			t.Fatalf("inconsistent stats after fuzzed traffic: %+v", s)
		}
	})
}

// FuzzParseLocateResponse: the client-side locate parser must never
// panic and must only accept lines whose fingerprints and holder ids
// survive re-framing.
func FuzzParseLocateResponse(f *testing.F) {
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e node0,node1\n"))
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e -\n"))
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e-c2 node0\n"))
	f.Add([]byte("zzzz node0\n"))
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e node0 extra\n"))
	f.Add([]byte("d41d8cd98f00b204e9800998ecf8427e ,\n"))
	f.Add([]byte("no holders"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		holders, fps, err := parseLocateResponse(data)
		if err != nil {
			return
		}
		if len(holders) != len(fps) {
			t.Fatalf("%d holder lists for %d fingerprints", len(holders), len(fps))
		}
		for i, fp := range fps {
			if err := fp.Validate(); err != nil {
				t.Fatalf("accepted invalid fingerprint %q", fp)
			}
			for _, holder := range holders[i] {
				if err := validateHolderID(holder); err != nil {
					t.Fatalf("accepted unframeable holder %q: %v", holder, err)
				}
			}
		}
	})
}
