package peer

import (
	"fmt"

	"github.com/gear-image/gear/internal/cache"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/tarstream"
	"github.com/gear-image/gear/internal/telemetry"
)

// DefaultMaxConcurrent bounds how many downloads a peer serves at once
// when ServerOptions leaves MaxConcurrent zero. Serving neighbours must
// not starve the node's own workload, so the bound is deliberately
// small (the bounded-transfer-path lesson from parallel image pulling).
const DefaultMaxConcurrent = 4

// ServerOptions configures a Server.
type ServerOptions struct {
	// MaxConcurrent bounds concurrent serves; excess requests wait.
	// 0 selects DefaultMaxConcurrent.
	MaxConcurrent int
	// Compress serves gzip wire framing, exactly like a compressing
	// Gear Registry: gzip is deterministic here, so a file served by a
	// peer costs the same wire bytes as the registry serving it — what
	// keeps per-node received bytes identical with and without peers.
	Compress bool
	// Telemetry, if set, is the registry peer.served.* metrics publish
	// into — typically the owning daemon's. Nil gets private handles.
	Telemetry *telemetry.Registry
}

// Server exports a node's level-1 cache to its cluster over the Gear
// Registry's own query/download/batch verb set. Reads go through
// cache.Peek, so serving neighbours never distorts the owner's
// replacement decisions or hit-ratio accounting. Safe for concurrent
// use.
type Server struct {
	id    string
	cache *cache.Cache
	opts  ServerOptions
	sem   chan struct{}

	objectsServed *telemetry.Counter
	bytesServed   *telemetry.Counter
}

// NewServer exports c, owned by the node named id.
func NewServer(id string, c *cache.Cache, opts ServerOptions) *Server {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = DefaultMaxConcurrent
	}
	return &Server{
		id:            id,
		cache:         c,
		opts:          opts,
		sem:           make(chan struct{}, opts.MaxConcurrent),
		objectsServed: opts.Telemetry.Counter("peer.served.objects"),
		bytesServed:   opts.Telemetry.Counter("peer.served.bytes"),
	}
}

// ID returns the owning node's id.
func (s *Server) ID() string { return s.id }

// Query reports whether the node currently holds fp.
func (s *Server) Query(fp hashing.Fingerprint) (bool, error) {
	if err := fp.Validate(); err != nil {
		return false, fmt.Errorf("peer server %s: query: %w", s.id, err)
	}
	return s.cache.Contains(fp), nil
}

// Download serves fp from the cache, returning the uncompressed payload
// and the wire bytes it cost (the compressed length when Compress is
// set). A file the cache no longer holds returns
// gearregistry.ErrNotFound — eviction between locate and download is a
// normal race, and callers fall back to another holder or the registry.
func (s *Server) Download(fp hashing.Fingerprint) ([]byte, int64, error) {
	s.acquire()
	defer s.release()
	data, wire, err := s.serveLocked(fp)
	if err != nil {
		return nil, 0, err
	}
	s.objectsServed.Add(1)
	s.bytesServed.Add(wire)
	return data, wire, nil
}

// DownloadBatch serves several files in one logical round trip,
// all-or-nothing like the registry's batch verb: if any file is absent
// the whole batch fails (and counts nothing as served) and the caller
// re-plans.
func (s *Server) DownloadBatch(fps []hashing.Fingerprint) ([][]byte, int64, error) {
	s.acquire()
	defer s.release()
	payloads := make([][]byte, len(fps))
	var wire int64
	for i, fp := range fps {
		data, w, err := s.serveLocked(fp)
		if err != nil {
			return nil, 0, err
		}
		payloads[i] = data
		wire += w
	}
	s.objectsServed.Add(int64(len(fps)))
	s.bytesServed.Add(wire)
	return payloads, wire, nil
}

// serveLocked looks up one object; the caller holds a serve slot and
// accounts served traffic itself.
func (s *Server) serveLocked(fp hashing.Fingerprint) ([]byte, int64, error) {
	if err := fp.Validate(); err != nil {
		return nil, 0, fmt.Errorf("peer server %s: %w", s.id, err)
	}
	content, ok := s.cache.Peek(fp)
	if !ok {
		return nil, 0, fmt.Errorf("peer server %s: %s: %w", s.id, fp, gearregistry.ErrNotFound)
	}
	data := content.Data()
	wire := int64(len(data))
	if s.opts.Compress {
		z, err := tarstream.Gzip(data)
		if err != nil {
			return nil, 0, fmt.Errorf("peer server %s: %s: %w", s.id, fp, err)
		}
		wire = int64(len(z))
	}
	return data, wire, nil
}

// downloadWire returns the bytes exactly as they would cross the wire
// plus whether they are gzip-framed; the HTTP handler serves this so
// compression survives transport. Accounting matches Download.
func (s *Server) downloadWire(fp hashing.Fingerprint) ([]byte, bool, error) {
	if err := fp.Validate(); err != nil {
		return nil, false, fmt.Errorf("peer server %s: download: %w", s.id, err)
	}
	s.acquire()
	defer s.release()
	content, ok := s.cache.Peek(fp)
	if !ok {
		return nil, false, fmt.Errorf("peer server %s: %s: %w", s.id, fp, gearregistry.ErrNotFound)
	}
	data := content.Data()
	if s.opts.Compress {
		z, err := tarstream.Gzip(data)
		if err != nil {
			return nil, false, fmt.Errorf("peer server %s: %s: %w", s.id, fp, err)
		}
		s.objectsServed.Add(1)
		s.bytesServed.Add(int64(len(z)))
		return z, true, nil
	}
	s.objectsServed.Add(1)
	s.bytesServed.Add(int64(len(data)))
	return data, false, nil
}

func (s *Server) acquire() { s.sem <- struct{}{} }
func (s *Server) release() { <-s.sem }

// ServerStats summarizes what the node has served to its cluster.
type ServerStats struct {
	ObjectsServed int64 `json:"objectsServed"`
	BytesServed   int64 `json:"bytesServed"`
	MaxConcurrent int   `json:"maxConcurrent"`
}

// Stats returns a snapshot.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		ObjectsServed: s.objectsServed.Value(),
		BytesServed:   s.bytesServed.Value(),
		MaxConcurrent: s.opts.MaxConcurrent,
	}
}
