// Package gear is the public API of the Gear reproduction — an
// implementation of "Gear: Enable Efficient Container Storage and
// Deployment with a New Image Format" (ICDCS 2021).
//
// Gear replaces the monolithic Docker image with two decoupled parts:
//
//   - a tiny Gear index — the image's directory tree with every regular
//     file replaced by the MD5 fingerprint of its content, packaged as a
//     single-layer Docker image so the stock distribution path carries it;
//   - a pool of Gear files — the file contents, stored content-addressed
//     in a Gear registry and deduplicated across all images.
//
// A client deploys a container by pulling only the index and faulting
// files in on demand, through a three-level local store (shared file
// cache / image indexes / per-container diffs). The package exposes the
// whole pipeline:
//
//	fs := gear.NewFS()                       // author a root filesystem
//	... fs.MkdirAll / fs.WriteFile ...
//	img, _ := gear.SingleLayerImage("app", "v1", fs, gear.ImageConfig{})
//
//	docker := gear.NewRegistry()             // Docker-side registry
//	files := gear.NewFileStore(gear.FileStoreOptions{Compress: true})
//	conv, _ := gear.NewConverter(gear.ConverterOptions{})
//	res, _ := conv.Convert(img)              // Docker image -> Gear image
//	gear.Publish(res, docker, files)
//
//	daemon, _ := gear.NewDaemon(docker, files, gear.DaemonOptions{})
//	dep, _ := daemon.DeployGear("app", "v1", accessPaths, 0)
//	data, _, _ := dep.Read("/etc/app.conf")  // lazily fetched
//
// Both registries also speak HTTP (RegistryHandler/FileStoreHandler and
// the matching clients), mirroring the paper's two-server deployment.
//
// At fleet scale the single Gear registry is replaced by the sharded
// tier: a ShardCluster consistent-hashes the file pool over replicated
// members and satisfies GearStore, so it drops into the same pipeline —
//
//	cluster, _ := gear.NewShardCluster(gear.ShardClusterOptions{
//		Shards: []string{"s0", "s1", "s2"}, Replication: 2,
//	})
//	daemon, _ := gear.NewDaemon(docker, cluster, gear.DaemonOptions{})
//
// Large files (the AI/big-model workload) chunk at conversion time with
// a content-defined policy and fault in chunk by chunk through a
// bounded fetch window; registries additionally serve byte ranges
// (GearRangeStore) so even unchunked cold files can be read partially:
//
//	conv, _ := gear.NewConverter(gear.ConverterOptions{
//		Chunking: gear.CDCChunks(4 << 20), // 4 MB average chunks
//	})
//	st, _ := gear.NewStore(gear.StoreOptions{
//		Remote: files, ChunkWindowBytes: 8 << 20, ChunkReadahead: 2,
//	})
package gear

import (
	"fmt"
	"io"
	"net/http"

	"github.com/gear-image/gear/internal/cache"
	"github.com/gear-image/gear/internal/clientopt"
	"github.com/gear-image/gear/internal/corpus"
	"github.com/gear-image/gear/internal/dedup"
	"github.com/gear-image/gear/internal/dockersim"
	"github.com/gear-image/gear/internal/experiments"
	"github.com/gear-image/gear/internal/gear/convert"
	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/gear/store"
	"github.com/gear-image/gear/internal/gear/viewer"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/imagefmt"
	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/peer"
	"github.com/gear-image/gear/internal/prefetch"
	"github.com/gear-image/gear/internal/registry"
	"github.com/gear-image/gear/internal/shardreg"
	"github.com/gear-image/gear/internal/slacker"
	"github.com/gear-image/gear/internal/telemetry"
	"github.com/gear-image/gear/internal/vfs"
)

// Content addressing.
type (
	// Fingerprint identifies a Gear file (MD5 of its content).
	Fingerprint = hashing.Fingerprint
	// Digest identifies a Docker layer or manifest (SHA256).
	Digest = hashing.Digest
)

// FingerprintBytes returns the MD5 fingerprint of data.
func FingerprintBytes(data []byte) Fingerprint { return hashing.FingerprintBytes(data) }

// DigestBytes returns the SHA256 digest of data.
func DigestBytes(data []byte) Digest { return hashing.DigestBytes(data) }

// Filesystem authoring.
type (
	// FS is an in-memory root filesystem tree.
	FS = vfs.FS
	// FSNode is one entry of an FS.
	FSNode = vfs.Node
)

// NewFS returns an empty filesystem containing only the root directory.
func NewFS() *FS { return vfs.New() }

// Docker image model.
type (
	// Image is a Docker image: manifest plus layer payloads.
	Image = imagefmt.Image
	// Manifest describes an image in a registry.
	Manifest = imagefmt.Manifest
	// ImageConfig carries environment/entrypoint/labels.
	ImageConfig = imagefmt.Config
	// ImageBuilder assembles an image layer by layer.
	ImageBuilder = imagefmt.Builder
	// Layer is one read-only image layer.
	Layer = imagefmt.Layer
)

// NewImageBuilder starts an image build for name:tag.
func NewImageBuilder(name, tag string) *ImageBuilder { return imagefmt.NewBuilder(name, tag) }

// SingleLayerImage packages one tree as a single-layer image.
func SingleLayerImage(name, tag string, tree *FS, cfg ImageConfig) (*Image, error) {
	return imagefmt.SingleLayerImage(name, tag, tree, cfg)
}

// The Gear image format.
type (
	// Index is a Gear index: the metadata half of a Gear image.
	Index = index.Index
	// IndexEntry is one node of the index tree.
	IndexEntry = index.Entry
	// FileRef is one unique Gear file an index references.
	FileRef = index.FileRef
	// ChunkPolicy selects how large files split into chunks: fixed-size
	// pieces or content-defined (rolling-hash) chunks. The zero value
	// keeps files whole.
	ChunkPolicy = index.ChunkPolicy
	// FileChunk is one chunk of a split Gear file, in file order.
	FileChunk = index.Chunk
)

// FixedChunks is the fixed-size chunk policy: files larger than size
// split into size-byte pieces.
func FixedChunks(size int64) ChunkPolicy { return index.FixedChunks(size) }

// CDCChunks is the content-defined chunk policy: rolling-hash cut
// points averaging avg bytes within [avg/4, avg*4], so identical
// regions of different files chunk identically regardless of offset.
func CDCChunks(avg int64) ChunkPolicy { return index.CDCChunks(avg) }

// BuildIndex constructs an Index and its file pool from a flattened root
// filesystem.
func BuildIndex(name, tag string, cfg ImageConfig, root *FS) (*Index, map[Fingerprint][]byte, error) {
	return index.Build(name, tag, cfg, root, nil)
}

// BuildIndexChunked is BuildIndex with large files split under pol; the
// pool then holds chunks as first-class Gear files and the index
// carries each split file's chunk table.
func BuildIndexChunked(name, tag string, cfg ImageConfig, root *FS, pol ChunkPolicy) (*Index, map[Fingerprint][]byte, error) {
	return index.BuildPolicy(name, tag, cfg, root, nil, pol, 1)
}

// IndexFromImage extracts the Index from a pulled single-layer Gear
// index image.
func IndexFromImage(img *Image) (*Index, error) { return index.FromImage(img) }

// Registries.
type (
	// Registry is the Docker-side registry: manifests plus compressed
	// layers, deduplicated at layer granularity.
	Registry = registry.Registry
	// RegistryStore is the protocol shared by in-process and HTTP
	// registries.
	RegistryStore = registry.Store
	// RegistryClient speaks to a remote Registry over HTTP.
	RegistryClient = registry.Client
	// FileStore is the Gear registry: content-addressed Gear files with
	// query/upload/download.
	FileStore = gearregistry.Registry
	// FileStoreOptions configures a FileStore.
	FileStoreOptions = gearregistry.Options
	// GearStore is the protocol shared by in-process and HTTP Gear
	// registries.
	GearStore = gearregistry.Store
	// GearRangeStore is the optional byte-range verb of the redesigned
	// store surface: DownloadRange(fp, off, n) returns n bytes of a Gear
	// file from offset off. The in-process FileStore, the HTTP client,
	// the retrying wrapper, and the ShardCluster all implement it.
	GearRangeStore = gearregistry.RangeDownloader
	// FileStoreClient speaks to a remote FileStore over HTTP.
	FileStoreClient = gearregistry.Client
)

// NewRegistry returns an empty in-process Docker-side registry.
func NewRegistry() *Registry { return registry.New() }

// NewFileStore returns an empty in-process Gear registry.
func NewFileStore(opts FileStoreOptions) *FileStore { return gearregistry.New(opts) }

// RegistryHandler serves a Registry over HTTP.
func RegistryHandler(r *Registry) http.Handler { return registry.NewHandler(r) }

// FileStoreHandler serves a FileStore over HTTP.
func FileStoreHandler(f *FileStore) http.Handler { return gearregistry.NewHandler(f) }

// NewRegistryClient returns a Store for the registry at baseURL.
func NewRegistryClient(baseURL string, hc *http.Client) *RegistryClient {
	return registry.NewClient(baseURL, hc)
}

// NewFileStoreClient returns a Store for the Gear registry at baseURL.
func NewFileStoreClient(baseURL string, hc *http.Client) *FileStoreClient {
	return gearregistry.NewClient(baseURL, hc)
}

// PushImage uploads an image, skipping layers the registry already has.
func PushImage(s RegistryStore, img *Image) (int64, error) { return registry.Push(s, img) }

// PullImage fetches a complete image.
func PullImage(s RegistryStore, name, tag string) (*Image, error) {
	return registry.Pull(s, name, tag)
}

// Conversion.
type (
	// Converter turns Docker images into Gear images.
	Converter = convert.Converter
	// ConverterOptions configures a Converter.
	ConverterOptions = convert.Options
	// ConvertResult is one converted image: index, file pool, index
	// image, and the modeled conversion timing.
	ConvertResult = convert.Result
)

// NewConverter returns a Converter.
func NewConverter(opts ConverterOptions) (*Converter, error) { return convert.New(opts) }

// Publish stores a conversion result: index image to the Docker
// registry, absent Gear files to the Gear registry, one request per
// file. Pusher is its concurrent counterpart.
func Publish(res *ConvertResult, docker RegistryStore, files GearStore) (indexBytes, fileBytes int64, err error) {
	return convert.Publish(res, docker, files)
}

// Concurrent push pipeline.
type (
	// Pusher uploads Gear file sets: one batched dedup query for the
	// whole set, then the absent files through a bounded worker pool.
	Pusher = convert.Pusher
	// PusherOptions configures a Pusher.
	PusherOptions = convert.PushOptions
	// PushWindow summarizes one PushAll call (query round trips, dedup
	// skips, upload streams).
	PushWindow = convert.PushWindow
)

// NewPusher returns a Pusher uploading to opts.Gear.
func NewPusher(opts PusherOptions) (*Pusher, error) { return convert.NewPusher(opts) }

// Client-side storage and deployment.
type (
	// Store is the client's three-level Gear storage.
	Store = store.Store
	// StoreOptions configures a Store.
	StoreOptions = store.Options
	// Viewer is one container's lazy filesystem view.
	Viewer = viewer.Viewer
	// CachePolicy selects the level-1 replacement algorithm.
	CachePolicy = cache.Policy
	// Daemon deploys containers from registries (Docker, Gear, or
	// Slacker mode) with modeled phase timing.
	Daemon = dockersim.Daemon
	// DaemonOptions configures a Daemon's cost model.
	DaemonOptions = dockersim.Options
	// Deployment is one deployed container.
	Deployment = dockersim.Deployment
	// LinkConfig models the client-registry network.
	LinkConfig = netsim.LinkConfig
)

// Cache replacement policies (§III-D1).
const (
	CacheFIFO = cache.FIFO
	CacheLRU  = cache.LRU
)

// NewStore returns an empty client store.
func NewStore(opts StoreOptions) (*Store, error) { return store.New(opts) }

// NewDaemon returns a deployment daemon speaking to the given registries.
// A zero-valued DaemonOptions.Link defaults to the paper's measured
// 904 Mbps LAN.
func NewDaemon(docker RegistryStore, files GearStore, opts DaemonOptions) (*Daemon, error) {
	if opts.Link == (netsim.LinkConfig{}) {
		opts.Link = netsim.DefaultLAN()
	}
	return dockersim.NewDaemon(docker, files, opts)
}

// DefaultLAN is the paper's measured 904 Mbps two-server link.
func DefaultLAN() LinkConfig { return netsim.DefaultLAN() }

// The sharded registry tier. A ShardCluster consistent-hashes the Gear
// file pool over replicated shard members with load-balanced, hedged
// replica reads and byte-range routing; it satisfies GearStore (and
// GearRangeStore), so it substitutes for a single FileStore anywhere —
// in particular as NewDaemon's files argument.
type (
	// ShardCluster is the routing client over the sharded Gear
	// registry tier.
	ShardCluster = shardreg.Cluster
	// ShardClusterOptions configures a ShardCluster: members,
	// replication, compression, retry policy, and read tuning.
	ShardClusterOptions = shardreg.Options
	// ShardReadOptions tunes replica selection and request hedging on
	// the cluster's download path.
	ShardReadOptions = shardreg.ReadOptions
	// ShardStats is a point-in-time view of the tier.
	ShardStats = shardreg.Stats
)

// NewShardCluster returns a sharded Gear registry tier.
func NewShardCluster(opts ShardClusterOptions) (*ShardCluster, error) {
	return shardreg.New(opts)
}

// Baselines and workloads.
type (
	// SlackerServer hosts block-device images (the Fig 10 baseline).
	SlackerServer = slacker.Server
	// Workload generates the paper-shaped synthetic image corpus.
	Workload = corpus.Corpus
	// WorkloadOptions configures corpus generation.
	WorkloadOptions = corpus.Options
	// WorkloadCategory is one of Table I's six categories.
	WorkloadCategory = corpus.Category
)

// NewSlackerServer returns an empty Slacker block server.
func NewSlackerServer() *SlackerServer { return slacker.NewServer() }

// SlackerImage lays out an image as a virtual block device.
func SlackerImage(img *Image, blockSize int64) (*slacker.BlockImage, error) {
	return slacker.FromImage(img, blockSize)
}

// NewWorkload generates the deterministic synthetic corpus (Table I
// shape: 50 series, 971 images at full version counts).
func NewWorkload(opts WorkloadOptions) (*Workload, error) { return corpus.New(opts) }

// Deduplication analysis (the Table II study).
type (
	// DedupAnalyzer measures storage and object counts under
	// none/layer/file/chunk deduplication.
	DedupAnalyzer = dedup.Analyzer
	// DedupReport is one granularity's measurement.
	DedupReport = dedup.Report
	// DedupGranularity selects the dedup unit.
	DedupGranularity = dedup.Granularity
)

// Dedup granularities.
const (
	DedupNone  = dedup.None
	DedupLayer = dedup.Layer
	DedupFile  = dedup.File
	DedupChunk = dedup.Chunk
	DedupCDC   = dedup.CDC
)

// NewDedupAnalyzer returns an analyzer using chunkSize for the chunk row.
func NewDedupAnalyzer(chunkSize int64) (*DedupAnalyzer, error) {
	return dedup.NewAnalyzer(chunkSize)
}

// Observability. Every long-lived component (Daemon, FileStore,
// Registry, Tracker, profile Library) publishes typed metrics into a
// MetricsRegistry and answers StatsSnapshot() with the same unified,
// JSON-marshalable shape — the payload MetricsHandler serves on
// /metrics and `gearctl stats` diffs and pretty-prints. The legacy
// per-package Stats accessors remain as views over the same handles,
// so their counters reconcile exactly with the snapshot.
type (
	// MetricsRegistry is a process- or component-scoped set of named
	// counters, gauges, and latency histograms with atomic hot paths.
	MetricsRegistry = telemetry.Registry
	// StatsSnapshot is the unified point-in-time view of a
	// MetricsRegistry: JSON-marshalable, diffable, and validatable.
	StatsSnapshot = telemetry.Snapshot
	// TraceSpan is one structured fetch-path trace event (deploy phase,
	// fetch window, or blocking fault) from a Daemon's trace ring or
	// Deployment.Trace.
	TraceSpan = telemetry.Span
	// TraceRing is a bounded in-memory span buffer.
	TraceRing = telemetry.TraceRing
	// ClientOptions is the shared HTTP client configuration (retries,
	// backoff, timeout) accepted by every *WithOptions constructor.
	ClientOptions = clientopt.Options
	// Tracker maps Gear-file fingerprints to the cluster nodes holding
	// them (peer-to-peer distribution).
	Tracker = peer.Tracker
	// TrackerClient speaks to a remote Tracker over HTTP.
	TrackerClient = peer.TrackerClient
	// ProfileLibrary persists startup profiles for prefetch-guided
	// deploys.
	ProfileLibrary = prefetch.Library
	// ProfileLibraryClient speaks to a remote ProfileLibrary over HTTP.
	ProfileLibraryClient = prefetch.LibraryClient
)

// NewMetricsRegistry returns an empty metrics registry, typically
// passed to DaemonOptions.Telemetry, FileStoreOptions.Telemetry, or
// ExperimentConfig.Telemetry so several components share one snapshot.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// MetricsHandler serves src's snapshot as indented JSON on GET — the
// /metrics endpoint every bundled server mounts.
func MetricsHandler(src telemetry.Snapshotter) http.Handler { return telemetry.Handler(src) }

// NewTracker returns an empty peer tracker publishing into a private
// metrics registry.
func NewTracker() *Tracker { return peer.NewTracker() }

// TrackerHandler serves a Tracker over HTTP (including /peer/metrics).
func TrackerHandler(t *Tracker) http.Handler { return peer.NewTrackerHandler(t) }

// NewTrackerClient returns a client for the tracker at baseURL.
func NewTrackerClient(baseURL string, hc *http.Client) *TrackerClient {
	return peer.NewTrackerClient(baseURL, hc)
}

// Every *WithOptions constructor follows one shape:
//
//	New<X>ClientWithOptions(baseURL string, o ClientOptions) (T, error)
//
// where T is the client (the GearStore interface for the file store,
// whose retrying variant is a wrapper type; the concrete client
// elsewhere). An empty baseURL is the one configuration error common
// to all of them and is reported instead of deferred to the first
// request.

// clientBase validates the one shared constructor precondition.
func clientBase(kind, baseURL string) error {
	if baseURL == "" {
		return fmt.Errorf("gear: %s client: empty base URL", kind)
	}
	return nil
}

// NewTrackerClientWithOptions is NewTrackerClient with the shared
// retry/backoff/timeout client configuration.
func NewTrackerClientWithOptions(baseURL string, o ClientOptions) (*TrackerClient, error) {
	if err := clientBase("tracker", baseURL); err != nil {
		return nil, err
	}
	return peer.NewTrackerClientWithOptions(baseURL, o), nil
}

// NewFileStoreClientWithOptions is NewFileStoreClient with the shared
// retry/backoff/timeout client configuration; with Retries > 0 the
// returned store transparently retries transient failures.
func NewFileStoreClientWithOptions(baseURL string, o ClientOptions) (GearStore, error) {
	if err := clientBase("file store", baseURL); err != nil {
		return nil, err
	}
	return gearregistry.NewClientWithOptions(baseURL, o)
}

// NewProfileLibrary returns an empty startup-profile library.
func NewProfileLibrary() *ProfileLibrary { return prefetch.NewLibrary() }

// ProfileLibraryHandler serves a ProfileLibrary over HTTP (including
// /profile/metrics).
func ProfileLibraryHandler(lib *ProfileLibrary) http.Handler {
	return prefetch.NewLibraryHandler(lib)
}

// NewProfileLibraryClientWithOptions is the profile-library client
// with the shared retry/backoff/timeout client configuration.
func NewProfileLibraryClientWithOptions(baseURL string, o ClientOptions) (*ProfileLibraryClient, error) {
	if err := clientBase("profile library", baseURL); err != nil {
		return nil, err
	}
	return prefetch.NewLibraryClientWithOptions(baseURL, o), nil
}

// NewProfileLibraryClient returns a client for the library at baseURL
// with the shared retry/backoff/timeout client configuration.
//
// Deprecated: use NewProfileLibraryClientWithOptions, which follows
// the unified (T, error) constructor shape.
func NewProfileLibraryClient(baseURL string, o ClientOptions) *ProfileLibraryClient {
	return prefetch.NewLibraryClientWithOptions(baseURL, o)
}

// Experiments.
type (
	// ExperimentConfig scales and seeds an experiment run.
	ExperimentConfig = experiments.Config
)

// DefaultExperimentConfig is the calibrated full-corpus configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiments.Default() }

// QuickExperimentConfig is a reduced configuration for fast runs.
func QuickExperimentConfig() ExperimentConfig { return experiments.Quick() }

// RunExperiment regenerates one of the paper's tables/figures ("table2",
// "fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", or "all"),
// writing the report to w.
func RunExperiment(id string, cfg ExperimentConfig, w io.Writer) error {
	return experiments.Run(id, cfg, w)
}

// ExperimentIDs lists the available experiments in paper order.
func ExperimentIDs() []string { return experiments.IDs() }
