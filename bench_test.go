// Benchmarks: one per table/figure of the paper (running the experiment
// harness end to end at the Quick scale), plus ablation benches for the
// design choices DESIGN.md §5 calls out. cmd/benchreport runs the same
// experiments at the calibrated full scale and prints the paper-style
// reports; these benches give repeatable relative timings.
package gear_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	gear "github.com/gear-image/gear"
)

// benchConfig is the reduced corpus used for benchmark runs.
func benchConfig() gear.ExperimentConfig {
	cfg := gear.QuickExperimentConfig()
	cfg.VersionsPerSeries = 3
	cfg.SeriesPerCategory = 1
	cfg.Scale = 0.2
	return cfg
}

// benchExperiment runs one experiment end to end per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := gear.RunExperiment(id, cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Dedup(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkFig2Redundancy(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig6Conversion(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFig7Storage(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkFig8Bandwidth(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9DeployTime(b *testing.B) { benchExperiment(b, "fig9") }
func BenchmarkFig10Versions(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11Services(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkExtLoadFleet(b *testing.B)   { benchExperiment(b, "extload") }
func BenchmarkExtP2P(b *testing.B)         { benchExperiment(b, "extp2p") }
func BenchmarkExtPrefetch(b *testing.B)    { benchExperiment(b, "extprefetch") }

// --- Core-path micro benchmarks ---

// benchImage builds a moderately sized single-layer image once.
func benchImage(b *testing.B, files, fileSize int) *gear.Image {
	b.Helper()
	fs := gear.NewFS()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < files; i++ {
		data := make([]byte, fileSize)
		rng.Read(data)
		if err := fs.WriteFile(fmt.Sprintf("/f%04d", i), data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	img, err := gear.SingleLayerImage("bench", "v1", fs, gear.ImageConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return img
}

// BenchmarkConvert measures Docker-to-Gear conversion of a 100-file
// image (the Fig 6 unit operation).
func BenchmarkConvert(b *testing.B) {
	img := benchImage(b, 100, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv, err := gear.NewConverter(gear.ConverterOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := conv.Convert(img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvertChunked is the big-file extension ablation: same bytes
// in one large file, chunked vs whole.
func BenchmarkConvertChunked(b *testing.B) {
	img := benchImage(b, 4, 128<<10)
	for _, chunk := range []int64{0, 16 << 10} {
		name := "whole"
		if chunk > 0 {
			name = "chunk16k"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				conv, err := gear.NewConverter(gear.ConverterOptions{ChunkSize: chunk})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := conv.Convert(img); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeployGear measures a full lazy deployment (index pull + all
// faults) against in-process registries.
func BenchmarkDeployGear(b *testing.B) {
	img := benchImage(b, 100, 4096)
	conv, err := gear.NewConverter(gear.ConverterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	res, err := conv.Convert(img)
	if err != nil {
		b.Fatal(err)
	}
	docker := gear.NewRegistry()
	files := gear.NewFileStore(gear.FileStoreOptions{Compress: true})
	if _, _, err := gear.Publish(res, docker, files); err != nil {
		b.Fatal(err)
	}
	access := make([]string, 0, 100)
	for i := 0; i < 100; i++ {
		access = append(access, fmt.Sprintf("/f%04d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		daemon, err := gear.NewDaemon(docker, files, gear.DaemonOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := daemon.DeployGear("bench", "v1", access, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeployDocker is the eager-pull baseline for BenchmarkDeployGear.
func BenchmarkDeployDocker(b *testing.B) {
	img := benchImage(b, 100, 4096)
	docker := gear.NewRegistry()
	if _, err := gear.PushImage(docker, img); err != nil {
		b.Fatal(err)
	}
	files := gear.NewFileStore(gear.FileStoreOptions{})
	access := make([]string, 0, 100)
	for i := 0; i < 100; i++ {
		access = append(access, fmt.Sprintf("/f%04d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		daemon, err := gear.NewDaemon(docker, files, gear.DaemonOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := daemon.DeployDocker("bench", "v1", access, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachePolicies is the FIFO-vs-LRU eviction ablation on the
// level-1 shared cache (§III-D1 leaves the policy to the operator).
func BenchmarkCachePolicies(b *testing.B) {
	payload := bytes.Repeat([]byte{0xaa}, 2048)
	for _, policy := range []gear.CachePolicy{gear.CacheFIFO, gear.CacheLRU} {
		b.Run(policy.String(), func(b *testing.B) {
			store, err := gear.NewStore(gear.StoreOptions{
				CacheCapacity: 64 << 10,
				CachePolicy:   policy,
				Remote:        preloadedFileStore(b, payload, 256),
			})
			if err != nil {
				b.Fatal(err)
			}
			fps := make([]gear.Fingerprint, 256)
			for i := range fps {
				fps[i] = gear.FingerprintBytes(append([]byte{byte(i), byte(i >> 8)}, payload...))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Zipf-ish skew: low indices dominate.
				idx := (i * 7) % 64
				if i%5 == 0 {
					idx = (i * 13) % 256
				}
				if _, err := store.Resolve("none", "/nope", fps[idx], int64(len(payload)+2)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// preloadedFileStore uploads n distinct objects derived from payload.
func preloadedFileStore(b *testing.B, payload []byte, n int) *gear.FileStore {
	b.Helper()
	fsStore := gear.NewFileStore(gear.FileStoreOptions{})
	for i := 0; i < n; i++ {
		data := append([]byte{byte(i), byte(i >> 8)}, payload...)
		if err := fsStore.Upload(gear.FingerprintBytes(data), data); err != nil {
			b.Fatal(err)
		}
	}
	return fsStore
}

// BenchmarkFileStoreCompression is the storage-compression ablation
// (§III-C: "Gear files can be further compressed").
func BenchmarkFileStoreCompression(b *testing.B) {
	data := append(bytes.Repeat([]byte("text configuration "), 128),
		make([]byte, 2048)...)
	for _, compress := range []bool{false, true} {
		name := "raw"
		if compress {
			name = "gzip"
		}
		b.Run(name, func(b *testing.B) {
			fsStore := gear.NewFileStore(gear.FileStoreOptions{Compress: compress})
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				obj := append(data, byte(i), byte(i>>8), byte(i>>16))
				fp := gear.FingerprintBytes(obj)
				if err := fsStore.Upload(fp, obj); err != nil {
					b.Fatal(err)
				}
				if _, _, err := fsStore.Download(fp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexEncode measures Gear index serialization (the object the
// whole deployment path waits on).
func BenchmarkIndexEncode(b *testing.B) {
	img := benchImage(b, 500, 512)
	root, err := img.Flatten()
	if err != nil {
		b.Fatal(err)
	}
	ix, _, err := gear.BuildIndex("bench", "v1", gear.ImageConfig{}, root)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.ToImage(); err != nil {
			b.Fatal(err)
		}
	}
}
