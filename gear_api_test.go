// Black-box tests of the public API: everything a downstream user does
// goes through these entry points.
package gear_test

import (
	"bytes"
	"io"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	gear "github.com/gear-image/gear"
)

// buildApp authors a small application image through the public API.
func buildApp(t *testing.T, tag, payload string) *gear.Image {
	t.Helper()
	fs := gear.NewFS()
	if err := fs.MkdirAll("/app", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/app/bin", []byte(payload), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/app/conf", []byte("shared config"), 0o644); err != nil {
		t.Fatal(err)
	}
	img, err := gear.SingleLayerImage("app", tag, fs, gear.ImageConfig{
		Entrypoint: []string{"/app/bin"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestPublicPipeline(t *testing.T) {
	img := buildApp(t, "v1", "binary-v1")

	conv, err := gear.NewConverter(gear.ConverterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := conv.Convert(img)
	if err != nil {
		t.Fatal(err)
	}
	docker := gear.NewRegistry()
	files := gear.NewFileStore(gear.FileStoreOptions{Compress: true})
	if _, _, err := gear.Publish(res, docker, files); err != nil {
		t.Fatal(err)
	}

	daemon, err := gear.NewDaemon(docker, files, gear.DaemonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := daemon.DeployGear("app", "v1", []string{"/app/bin"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, latency, err := dep.Read("/app/conf")
	if err != nil || string(data) != "shared config" || latency <= 0 {
		t.Errorf("Read = %q, %v, %v", data, latency, err)
	}
	if _, err := dep.Destroy(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicHTTPRoundTrip(t *testing.T) {
	dockerReg := gear.NewRegistry()
	fileReg := gear.NewFileStore(gear.FileStoreOptions{Compress: true})
	dockerSrv := httptest.NewServer(gear.RegistryHandler(dockerReg))
	defer dockerSrv.Close()
	fileSrv := httptest.NewServer(gear.FileStoreHandler(fileReg))
	defer fileSrv.Close()

	dockerClient := gear.NewRegistryClient(dockerSrv.URL, dockerSrv.Client())
	fileClient := gear.NewFileStoreClient(fileSrv.URL, fileSrv.Client())

	img := buildApp(t, "v1", "binary-v1")
	if _, err := gear.PushImage(dockerClient, img); err != nil {
		t.Fatal(err)
	}
	conv, err := gear.NewConverter(gear.ConverterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := conv.Convert(img)
	if err != nil {
		t.Fatal(err)
	}
	res.Index.Name = "gear/app"
	ixImg, err := res.Index.ToImage()
	if err != nil {
		t.Fatal(err)
	}
	res.IndexImage = ixImg
	if _, _, err := gear.Publish(res, dockerClient, fileClient); err != nil {
		t.Fatal(err)
	}

	// Both image forms are pullable; the Gear one decodes to an index.
	if _, err := gear.PullImage(dockerClient, "app", "v1"); err != nil {
		t.Fatal(err)
	}
	pulled, err := gear.PullImage(dockerClient, "gear/app", "v1")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := gear.IndexFromImage(pulled)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Lookup("/app/bin") == nil {
		t.Error("index missing entry")
	}

	// Deploy over HTTP end to end.
	daemon, err := gear.NewDaemon(dockerClient, fileClient, gear.DaemonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := daemon.DeployGear("gear/app", "v1", []string{"/app/bin"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := dep.Read("/app/bin")
	if err != nil || string(data) != "binary-v1" {
		t.Errorf("Read = %q, %v", data, err)
	}
}

func TestPublicWorkloadAndDedup(t *testing.T) {
	w, err := gear.NewWorkload(gear.WorkloadOptions{
		Seed: 5, Scale: 0.15, SeriesFilter: []string{"redis"}, MaxVersions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	analyzer, err := gear.NewDedupAnalyzer(512)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 2; v++ {
		img, err := w.Image("redis", v)
		if err != nil {
			t.Fatal(err)
		}
		if err := analyzer.Add(img); err != nil {
			t.Fatal(err)
		}
	}
	reports := analyzer.Reports()
	if len(reports) != 5 || reports[0].Granularity != gear.DedupNone {
		t.Errorf("reports = %+v", reports)
	}
	// Sub-file CDC dedups at least as much raw data as file granularity.
	if reports[4].Granularity != gear.DedupCDC || reports[4].Objects == 0 ||
		reports[4].RawBytes > reports[2].RawBytes {
		t.Errorf("cdc row = %+v", reports[4])
	}
}

func TestPublicExperimentDispatch(t *testing.T) {
	ids := gear.ExperimentIDs()
	if len(ids) != 19 {
		t.Fatalf("ids = %v", ids)
	}
	if err := gear.RunExperiment("bogus", gear.QuickExperimentConfig(), io.Discard); err == nil {
		t.Error("bogus experiment accepted")
	}
	// Run the cheapest real experiment end to end through the facade.
	cfg := gear.QuickExperimentConfig()
	cfg.Scale = 0.1
	cfg.SeriesPerCategory = 1
	cfg.VersionsPerSeries = 2
	var buf bytes.Buffer
	if err := gear.RunExperiment("fig2", cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "average") {
		t.Error("experiment report missing content")
	}
}

// buildModelApp authors an image whose payload file is large enough to
// chunk under every policy the tests use.
func buildModelApp(t *testing.T, size int) (*gear.Image, []byte) {
	t.Helper()
	fs := gear.NewFS()
	if err := fs.MkdirAll("/srv", 0o755); err != nil {
		t.Fatal(err)
	}
	model := make([]byte, size)
	rand.New(rand.NewSource(7)).Read(model)
	if err := fs.WriteFile("/srv/model", model, 0o644); err != nil {
		t.Fatal(err)
	}
	img, err := gear.SingleLayerImage("model", "v1", fs, gear.ImageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return img, model
}

// deployModel converts img under pol and deploys it on a fresh daemon.
func deployModel(t *testing.T, img *gear.Image, pol gear.ChunkPolicy, dopts gear.DaemonOptions) (*gear.Deployment, *gear.Daemon) {
	t.Helper()
	conv, err := gear.NewConverter(gear.ConverterOptions{Chunking: pol})
	if err != nil {
		t.Fatal(err)
	}
	res, err := conv.Convert(img)
	if err != nil {
		t.Fatal(err)
	}
	docker := gear.NewRegistry()
	files := gear.NewFileStore(gear.FileStoreOptions{Compress: true})
	if _, _, err := gear.Publish(res, docker, files); err != nil {
		t.Fatal(err)
	}
	daemon, err := gear.NewDaemon(docker, files, dopts)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := daemon.DeployGear("model", "v1", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return dep, daemon
}

func TestPublicChunkedLazyDeploy(t *testing.T) {
	const size = 256 << 10
	img, model := buildModelApp(t, size)
	const window = int64(64 << 10)
	dep, daemon := deployModel(t, img, gear.CDCChunks(8<<10), gear.DaemonOptions{
		ChunkWindowBytes: window, ChunkReadahead: 1,
	})

	// The index carries a chunk table for the big file.
	ix, err := daemon.GearStore().Index("model:v1")
	if err != nil {
		t.Fatal(err)
	}
	entry := ix.Lookup("/srv/model")
	if entry == nil || len(entry.Chunks) < 2 {
		t.Fatalf("entry = %+v", entry)
	}

	// A partial read faults only the overlapping chunks.
	const off, n = int64(100_003), int64(8 << 10)
	slice, stall, err := dep.ReadAt("/srv/model", off, n)
	if err != nil || stall <= 0 {
		t.Fatalf("ReadAt: %v (stall %v)", err, stall)
	}
	if !bytes.Equal(slice, model[off:off+n]) {
		t.Error("partial read bytes differ")
	}
	st := daemon.GearStore().Stats()
	if st.RemoteBytes >= size {
		t.Errorf("partial read moved the whole file: %d bytes", st.RemoteBytes)
	}

	// A full read completes the file within the window budget.
	full, _, err := dep.Read("/srv/model")
	if err != nil || !bytes.Equal(full, model) {
		t.Fatalf("full read parity: %v", err)
	}
	if peak := daemon.GearStore().ChunkWindowPeak(); peak <= 0 || peak > window {
		t.Errorf("window peak = %d, budget %d", peak, window)
	}
}

func TestPublicChunkingOffDegenerates(t *testing.T) {
	img, model := buildModelApp(t, 96<<10)
	plain, _ := deployModel(t, img, gear.ChunkPolicy{}, gear.DaemonOptions{})
	chunked, _ := deployModel(t, img, gear.CDCChunks(8<<10), gear.DaemonOptions{})

	const off, n = int64(33_333), int64(4 << 10)
	a, _, err := plain.ReadAt("/srv/model", off, n)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := chunked.ReadAt("/srv/model", off, n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) || !bytes.Equal(a, model[off:off+n]) {
		t.Error("chunked and whole-file reads differ")
	}
	fa, _, err := plain.Read("/srv/model")
	if err != nil {
		t.Fatal(err)
	}
	fb, _, err := chunked.Read("/srv/model")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fa, fb) || !bytes.Equal(fa, model) {
		t.Error("full reads differ across chunking modes")
	}
}

func TestPublicRangeVerb(t *testing.T) {
	data := make([]byte, 40<<10)
	rand.New(rand.NewSource(11)).Read(data)
	fp := gear.FingerprintBytes(data)

	files := gear.NewFileStore(gear.FileStoreOptions{Compress: true})
	if err := files.Upload(fp, data); err != nil {
		t.Fatal(err)
	}
	var rs gear.GearRangeStore = files
	payload, wire, err := rs.DownloadRange(fp, 1000, 512)
	if err != nil || !bytes.Equal(payload, data[1000:1512]) || wire <= 0 {
		t.Fatalf("DownloadRange = %d bytes, wire %d, %v", len(payload), wire, err)
	}

	// The same verb over HTTP through the unified client constructor.
	srv := httptest.NewServer(gear.FileStoreHandler(files))
	defer srv.Close()
	client, err := gear.NewFileStoreClientWithOptions(srv.URL, gear.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hrs, ok := client.(gear.GearRangeStore)
	if !ok {
		t.Fatal("HTTP client does not speak the range verb")
	}
	payload, _, err = hrs.DownloadRange(fp, 2048, 100)
	if err != nil || !bytes.Equal(payload, data[2048:2148]) {
		t.Fatalf("HTTP DownloadRange: %v", err)
	}
}

func TestPublicShardCluster(t *testing.T) {
	cluster, err := gear.NewShardCluster(gear.ShardClusterOptions{
		Shards: []string{"s1", "s2", "s3"}, Replication: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gear.NewShardCluster(gear.ShardClusterOptions{}); err == nil {
		t.Error("empty cluster accepted")
	}

	// The cluster drops into the daemon wherever a GearStore goes.
	img := buildApp(t, "v1", "binary-v1")
	conv, err := gear.NewConverter(gear.ConverterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := conv.Convert(img)
	if err != nil {
		t.Fatal(err)
	}
	docker := gear.NewRegistry()
	if _, _, err := gear.Publish(res, docker, cluster); err != nil {
		t.Fatal(err)
	}
	daemon, err := gear.NewDaemon(docker, cluster, gear.DaemonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := daemon.DeployGear("app", "v1", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := dep.Read("/app/conf")
	if err != nil || string(data) != "shared config" {
		t.Errorf("shard-backed read = %q, %v", data, err)
	}
}

func TestPublicClientConstructors(t *testing.T) {
	if _, err := gear.NewTrackerClientWithOptions("", gear.ClientOptions{}); err == nil {
		t.Error("tracker client accepted empty URL")
	}
	if _, err := gear.NewFileStoreClientWithOptions("", gear.ClientOptions{}); err == nil {
		t.Error("file store client accepted empty URL")
	}
	if _, err := gear.NewProfileLibraryClientWithOptions("", gear.ClientOptions{}); err == nil {
		t.Error("profile library client accepted empty URL")
	}
	if _, err := gear.NewTrackerClientWithOptions("http://tracker.local", gear.ClientOptions{}); err != nil {
		t.Errorf("tracker client: %v", err)
	}
	if _, err := gear.NewProfileLibraryClientWithOptions("http://profiles.local", gear.ClientOptions{}); err != nil {
		t.Errorf("profile library client: %v", err)
	}
	if c := gear.NewProfileLibraryClient("http://profiles.local", gear.ClientOptions{}); c == nil {
		t.Error("deprecated profile library constructor returned nil")
	}
}

func TestPublicBuildIndexChunked(t *testing.T) {
	fs := gear.NewFS()
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(3)).Read(data)
	if err := fs.WriteFile("/blob", data, 0o644); err != nil {
		t.Fatal(err)
	}
	ix, pool, err := gear.BuildIndexChunked("app", "v1", gear.ImageConfig{}, fs, gear.FixedChunks(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	entry := ix.Lookup("/blob")
	if entry == nil || len(entry.Chunks) != 8 {
		t.Fatalf("entry = %+v", entry)
	}
	var total int64
	for _, c := range entry.Chunks {
		piece, ok := pool[c.Fingerprint]
		if !ok {
			t.Fatalf("pool missing chunk %s", c.Fingerprint)
		}
		total += int64(len(piece))
	}
	if total != int64(len(data)) {
		t.Errorf("chunk bytes = %d, want %d", total, len(data))
	}
	if _, err := gear.CDCChunks(8 << 10).Split(data); err != nil {
		t.Errorf("Split: %v", err)
	}
}

func TestPublicFingerprints(t *testing.T) {
	fp := gear.FingerprintBytes([]byte("abc"))
	if string(fp) != "900150983cd24fb0d6963f7d28e17f72" {
		t.Errorf("fingerprint = %s", fp)
	}
	d := gear.DigestBytes([]byte("abc"))
	if !strings.HasPrefix(string(d), "sha256:") {
		t.Errorf("digest = %s", d)
	}
}

func TestPublicSlacker(t *testing.T) {
	img := buildApp(t, "v1", "payload")
	srv := gear.NewSlackerServer()
	bi, err := gear.SlackerImage(img, 512)
	if err != nil {
		t.Fatal(err)
	}
	srv.Put(bi)
	docker := gear.NewRegistry()
	if _, err := gear.PushImage(docker, img); err != nil {
		t.Fatal(err)
	}
	daemon, err := gear.NewDaemon(docker, gear.NewFileStore(gear.FileStoreOptions{}), gear.DaemonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	daemon.ConfigureSlacker(srv)
	dep, err := daemon.DeploySlacker("app", "v1", []string{"/app/bin"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := dep.Read("/app/conf")
	if err != nil || string(data) != "shared config" {
		t.Errorf("slacker read = %q, %v", data, err)
	}
}
