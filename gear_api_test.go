// Black-box tests of the public API: everything a downstream user does
// goes through these entry points.
package gear_test

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	gear "github.com/gear-image/gear"
)

// buildApp authors a small application image through the public API.
func buildApp(t *testing.T, tag, payload string) *gear.Image {
	t.Helper()
	fs := gear.NewFS()
	if err := fs.MkdirAll("/app", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/app/bin", []byte(payload), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/app/conf", []byte("shared config"), 0o644); err != nil {
		t.Fatal(err)
	}
	img, err := gear.SingleLayerImage("app", tag, fs, gear.ImageConfig{
		Entrypoint: []string{"/app/bin"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestPublicPipeline(t *testing.T) {
	img := buildApp(t, "v1", "binary-v1")

	conv, err := gear.NewConverter(gear.ConverterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := conv.Convert(img)
	if err != nil {
		t.Fatal(err)
	}
	docker := gear.NewRegistry()
	files := gear.NewFileStore(gear.FileStoreOptions{Compress: true})
	if _, _, err := gear.Publish(res, docker, files); err != nil {
		t.Fatal(err)
	}

	daemon, err := gear.NewDaemon(docker, files, gear.DaemonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := daemon.DeployGear("app", "v1", []string{"/app/bin"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, latency, err := dep.Read("/app/conf")
	if err != nil || string(data) != "shared config" || latency <= 0 {
		t.Errorf("Read = %q, %v, %v", data, latency, err)
	}
	if _, err := dep.Destroy(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicHTTPRoundTrip(t *testing.T) {
	dockerReg := gear.NewRegistry()
	fileReg := gear.NewFileStore(gear.FileStoreOptions{Compress: true})
	dockerSrv := httptest.NewServer(gear.RegistryHandler(dockerReg))
	defer dockerSrv.Close()
	fileSrv := httptest.NewServer(gear.FileStoreHandler(fileReg))
	defer fileSrv.Close()

	dockerClient := gear.NewRegistryClient(dockerSrv.URL, dockerSrv.Client())
	fileClient := gear.NewFileStoreClient(fileSrv.URL, fileSrv.Client())

	img := buildApp(t, "v1", "binary-v1")
	if _, err := gear.PushImage(dockerClient, img); err != nil {
		t.Fatal(err)
	}
	conv, err := gear.NewConverter(gear.ConverterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := conv.Convert(img)
	if err != nil {
		t.Fatal(err)
	}
	res.Index.Name = "gear/app"
	ixImg, err := res.Index.ToImage()
	if err != nil {
		t.Fatal(err)
	}
	res.IndexImage = ixImg
	if _, _, err := gear.Publish(res, dockerClient, fileClient); err != nil {
		t.Fatal(err)
	}

	// Both image forms are pullable; the Gear one decodes to an index.
	if _, err := gear.PullImage(dockerClient, "app", "v1"); err != nil {
		t.Fatal(err)
	}
	pulled, err := gear.PullImage(dockerClient, "gear/app", "v1")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := gear.IndexFromImage(pulled)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Lookup("/app/bin") == nil {
		t.Error("index missing entry")
	}

	// Deploy over HTTP end to end.
	daemon, err := gear.NewDaemon(dockerClient, fileClient, gear.DaemonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := daemon.DeployGear("gear/app", "v1", []string{"/app/bin"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := dep.Read("/app/bin")
	if err != nil || string(data) != "binary-v1" {
		t.Errorf("Read = %q, %v", data, err)
	}
}

func TestPublicWorkloadAndDedup(t *testing.T) {
	w, err := gear.NewWorkload(gear.WorkloadOptions{
		Seed: 5, Scale: 0.15, SeriesFilter: []string{"redis"}, MaxVersions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	analyzer, err := gear.NewDedupAnalyzer(512)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 2; v++ {
		img, err := w.Image("redis", v)
		if err != nil {
			t.Fatal(err)
		}
		if err := analyzer.Add(img); err != nil {
			t.Fatal(err)
		}
	}
	reports := analyzer.Reports()
	if len(reports) != 4 || reports[0].Granularity != gear.DedupNone {
		t.Errorf("reports = %+v", reports)
	}
}

func TestPublicExperimentDispatch(t *testing.T) {
	ids := gear.ExperimentIDs()
	if len(ids) != 18 {
		t.Fatalf("ids = %v", ids)
	}
	if err := gear.RunExperiment("bogus", gear.QuickExperimentConfig(), io.Discard); err == nil {
		t.Error("bogus experiment accepted")
	}
	// Run the cheapest real experiment end to end through the facade.
	cfg := gear.QuickExperimentConfig()
	cfg.Scale = 0.1
	cfg.SeriesPerCategory = 1
	cfg.VersionsPerSeries = 2
	var buf bytes.Buffer
	if err := gear.RunExperiment("fig2", cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "average") {
		t.Error("experiment report missing content")
	}
}

func TestPublicFingerprints(t *testing.T) {
	fp := gear.FingerprintBytes([]byte("abc"))
	if string(fp) != "900150983cd24fb0d6963f7d28e17f72" {
		t.Errorf("fingerprint = %s", fp)
	}
	d := gear.DigestBytes([]byte("abc"))
	if !strings.HasPrefix(string(d), "sha256:") {
		t.Errorf("digest = %s", d)
	}
}

func TestPublicSlacker(t *testing.T) {
	img := buildApp(t, "v1", "payload")
	srv := gear.NewSlackerServer()
	bi, err := gear.SlackerImage(img, 512)
	if err != nil {
		t.Fatal(err)
	}
	srv.Put(bi)
	docker := gear.NewRegistry()
	if _, err := gear.PushImage(docker, img); err != nil {
		t.Fatal(err)
	}
	daemon, err := gear.NewDaemon(docker, gear.NewFileStore(gear.FileStoreOptions{}), gear.DaemonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	daemon.ConfigureSlacker(srv)
	dep, err := daemon.DeploySlacker("app", "v1", []string{"/app/bin"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := dep.Read("/app/conf")
	if err != nil || string(data) != "shared config" {
		t.Errorf("slacker read = %q, %v", data, err)
	}
}
