// Quickstart: the whole Gear pipeline in one process.
//
// It authors a small web-server image, converts it to a Gear image
// (index + content-addressed files), publishes both halves, deploys a
// container that pulls only the index, reads files lazily, modifies the
// container, and commits it as a new Gear image.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	gear "github.com/gear-image/gear"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Author a root filesystem and package it as a Docker image.
	fs := gear.NewFS()
	for _, dir := range []string{"/bin", "/etc/web", "/srv"} {
		if err := fs.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	steps := map[string][]byte{
		"/bin/webd":       []byte("ELF...imagine a web server binary here..."),
		"/etc/web/conf":   []byte("listen = :8080\nroot = /srv\n"),
		"/srv/index.html": []byte("<h1>hello from gear</h1>"),
	}
	for p, data := range steps {
		if err := fs.WriteFile(p, data, 0o644); err != nil {
			return err
		}
	}
	img, err := gear.SingleLayerImage("webapp", "v1", fs, gear.ImageConfig{
		Entrypoint: []string{"/bin/webd"},
		Env:        []string{"PORT=8080"},
	})
	if err != nil {
		return err
	}
	fmt.Printf("built docker image %s: %d layer(s), %d B compressed\n",
		img.Manifest.Reference(), len(img.Layers), img.Manifest.TotalSize())

	// 2. Convert it into a Gear image.
	conv, err := gear.NewConverter(gear.ConverterOptions{})
	if err != nil {
		return err
	}
	res, err := conv.Convert(img)
	if err != nil {
		return err
	}
	ixStats, err := res.Index.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("converted in %v (modeled): index %d B for %d files (%d unique)\n",
		res.Timing.Total(), ixStats.IndexBytes, ixStats.Files, ixStats.UniqueFiles)

	// 3. Publish: index image to the Docker registry, files to the Gear
	// registry.
	docker := gear.NewRegistry()
	files := gear.NewFileStore(gear.FileStoreOptions{Compress: true})
	ixBytes, fileBytes, err := gear.Publish(res, docker, files)
	if err != nil {
		return err
	}
	fmt.Printf("published: %d B of index image, %d B of gear files\n", ixBytes, fileBytes)

	// 4. Deploy: the client needs only the tiny index before launch.
	daemon, err := gear.NewDaemon(docker, files, gear.DaemonOptions{})
	if err != nil {
		return err
	}
	dep, err := daemon.DeployGear("webapp", "v1", []string{"/bin/webd", "/etc/web/conf"}, 0)
	if err != nil {
		return err
	}
	fmt.Printf("deployed %s: pull moved %d B, lazy run moved %d B\n",
		dep.Ref, dep.Pull.Bytes, dep.Run.Bytes)

	// 5. Read on demand — the first access faults the file in.
	page, latency, err := dep.Read("/srv/index.html")
	if err != nil {
		return err
	}
	fmt.Printf("read /srv/index.html (%d B) in %v: %q\n", len(page), latency, page)

	// 6. Modify and commit the container as webapp:v2.
	if err := dep.Write("/srv/new.html", []byte("<h1>v2 content</h1>")); err != nil {
		return err
	}
	newIx, newFiles, err := daemon.GearStore().Commit(dep.ContainerID, "webapp", "v2")
	if err != nil {
		return err
	}
	for fp, data := range newFiles {
		if err := files.Upload(fp, data); err != nil {
			return err
		}
	}
	ixImg, err := newIx.ToImage()
	if err != nil {
		return err
	}
	if _, err := gear.PushImage(docker, ixImg); err != nil {
		return err
	}
	fmt.Printf("committed %s with %d new gear file(s)\n", newIx.Reference(), len(newFiles))

	// 7. The committed image deploys like any other.
	dep2, err := daemon.DeployGear("webapp", "v2", []string{"/srv/new.html"}, 0)
	if err != nil {
		return err
	}
	page2, _, err := dep2.Read("/srv/new.html")
	if err != nil {
		return err
	}
	fmt.Printf("v2 container serves %q (transferred %d B — everything else was cached)\n",
		page2, dep2.Pull.Bytes+dep2.Run.Bytes)
	return nil
}
