// Lazy deploy over real HTTP: both registries listen on loopback ports,
// a daemon talks to them through the HTTP clients, and three versions of
// a synthetic nginx image are deployed cold (empty cache) and warm
// (file-level sharing against the previous version), reproducing the
// client-side mechanics behind Fig 8 and Fig 9.
//
// Run with:
//
//	go run ./examples/lazy_deploy
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	gear "github.com/gear-image/gear"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// serve starts an HTTP handler on a loopback port and returns its URL.
func serve(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("server: %v", err)
		}
	}()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

func run() error {
	// Registries, each behind real HTTP.
	dockerReg := gear.NewRegistry()
	fileReg := gear.NewFileStore(gear.FileStoreOptions{Compress: true})
	dockerURL, stopDocker, err := serve(gear.RegistryHandler(dockerReg))
	if err != nil {
		return err
	}
	defer stopDocker()
	gearURL, stopGear, err := serve(gear.FileStoreHandler(fileReg))
	if err != nil {
		return err
	}
	defer stopGear()
	fmt.Printf("docker registry at %s\ngear registry at   %s\n", dockerURL, gearURL)

	// Publish three synthetic nginx versions: originals + Gear images.
	const versions = 3
	workload, err := gear.NewWorkload(gear.WorkloadOptions{
		Seed: 7, Scale: 0.5, SeriesFilter: []string{"nginx"}, MaxVersions: versions,
	})
	if err != nil {
		return err
	}
	dockerClient := gear.NewRegistryClient(dockerURL, nil)
	gearClient := gear.NewFileStoreClient(gearURL, nil)
	conv, err := gear.NewConverter(gear.ConverterOptions{})
	if err != nil {
		return err
	}
	for v := 0; v < versions; v++ {
		img, err := workload.Image("nginx", v)
		if err != nil {
			return err
		}
		if _, err := gear.PushImage(dockerClient, img); err != nil {
			return err
		}
		res, err := conv.Convert(img)
		if err != nil {
			return err
		}
		res.Index.Name = "gear/nginx"
		ixImg, err := res.Index.ToImage()
		if err != nil {
			return err
		}
		res.IndexImage = ixImg
		if _, _, err := gear.Publish(res, dockerClient, gearClient); err != nil {
			return err
		}
	}
	fmt.Printf("published %d versions of nginx (originals + gear images)\n\n", versions)

	// One daemon with a simulated 100 Mbps link (scaled 1/1000 with the
	// corpus, like the paper's bandwidth study).
	link := gear.DefaultLAN()
	link.BytesPerSecond = 100e6 / 8 / 1000 * 0.5
	daemon, err := gear.NewDaemon(dockerClient, gearClient, gear.DaemonOptions{Link: link})
	if err != nil {
		return err
	}

	deploy := func(tag string, version int) error {
		items, err := workload.NecessarySet("nginx", version)
		if err != nil {
			return err
		}
		access := make([]string, len(items))
		for i, it := range items {
			access[i] = it.Path
		}
		dep, err := daemon.DeployGear("gear/nginx", tag, access, 100*time.Millisecond)
		if err != nil {
			return err
		}
		cacheStats := daemon.GearStore().CacheStats()
		fmt.Printf("deploy %-14s pull %8d B in %8v | lazy run %8d B (%3d objects) in %8v | cache hit ratio %.2f\n",
			"gear/nginx:"+tag, dep.Pull.Bytes, dep.Pull.Time.Round(time.Millisecond),
			dep.Run.Bytes, dep.Run.Requests, dep.Run.Time.Round(time.Millisecond),
			cacheStats.HitRatio())
		return nil
	}

	fmt.Println("cold cache:")
	if err := deploy("v01", 0); err != nil {
		return err
	}
	fmt.Println("warm cache (shared files skip the wire):")
	if err := deploy("v02", 1); err != nil {
		return err
	}
	if err := deploy("v03", 2); err != nil {
		return err
	}

	// Docker baseline for contrast.
	dep, err := daemon.DeployDocker("nginx", "v03", nil, 100*time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Printf("\ndocker baseline v03: pull %d B in %v (entire image before launch)\n",
		dep.Pull.Bytes, dep.Pull.Time.Round(time.Millisecond))
	return nil
}
