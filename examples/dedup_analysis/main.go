// Dedup analysis: a miniature of the paper's Table II study. It feeds a
// slice of the synthetic corpus through the dedup analyzer and prints
// storage usage and unique-object counts at none/layer/file/chunk
// granularity — the numbers that motivate Gear's file-level design.
//
// Run with:
//
//	go run ./examples/dedup_analysis
package main

import (
	"fmt"
	"log"

	gear "github.com/gear-image/gear"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	workload, err := gear.NewWorkload(gear.WorkloadOptions{
		Seed:  2021,
		Scale: 0.5,
		SeriesFilter: []string{
			"debian", "python", "redis", "postgres", "nginx", "wordpress",
		},
		MaxVersions: 8,
	})
	if err != nil {
		return err
	}

	analyzer, err := gear.NewDedupAnalyzer(512)
	if err != nil {
		return err
	}
	images := 0
	for _, s := range workload.Series() {
		for v := 0; v < s.NumVersions; v++ {
			img, err := workload.Image(s.Name, v)
			if err != nil {
				return err
			}
			if err := analyzer.Add(img); err != nil {
				return err
			}
			images++
		}
	}

	fmt.Printf("analyzed %d images across %d series\n\n", images, len(workload.Series()))
	fmt.Printf("%-12s %14s %14s %12s\n", "granularity", "storage", "raw", "objects")
	reports := analyzer.Reports()
	for _, r := range reports {
		fmt.Printf("%-12s %11.2f MB %11.2f MB %12d\n",
			r.Granularity, float64(r.StorageBytes)/1e6, float64(r.RawBytes)/1e6, r.Objects)
	}

	base := reports[0].StorageBytes
	fmt.Println()
	for _, r := range reports[1:] {
		fmt.Printf("%-6s dedup saves %5.1f%% of storage with %d unique objects\n",
			r.Granularity, 100*(1-float64(r.StorageBytes)/float64(base)), r.Objects)
	}
	var fileObjs, chunkObjs int64
	for _, r := range reports {
		switch r.Granularity {
		case gear.DedupFile:
			fileObjs = r.Objects
		case gear.DedupChunk:
			chunkObjs = r.Objects
		}
	}
	fmt.Printf("\nchunk-level needs %.1fx more objects than file-level for a similar saving —\n",
		float64(chunkObjs)/float64(fileObjs))
	fmt.Println("which is why Gear deduplicates at file granularity (§II-D of the paper).")
	return nil
}
