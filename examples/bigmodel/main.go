// Big model: the paper's future-work extension (§VII) — "enable Gear to
// read big files on demand in chunks to better accelerate containers
// that need to download big files, such as AI containers with big
// models" — implemented end to end.
//
// An image carrying a 4 MB model file is converted with chunking
// enabled; the container then reads one 64 KB slice of the model
// (an embedding lookup, say) and only the overlapping chunks cross the
// wire.
//
// Run with:
//
//	go run ./examples/bigmodel
package main

import (
	"fmt"
	"log"
	"math/rand"

	gear "github.com/gear-image/gear"
)

const (
	modelSize = 4 << 20
	chunkSize = 128 << 10
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. An AI-serving image: small code, one big model blob.
	fs := gear.NewFS()
	if err := fs.MkdirAll("/srv/model", 0o755); err != nil {
		return err
	}
	model := make([]byte, modelSize)
	rand.New(rand.NewSource(42)).Read(model)
	if err := fs.WriteFile("/srv/model/weights.bin", model, 0o644); err != nil {
		return err
	}
	if err := fs.WriteFile("/srv/serve.py", []byte("import model..."), 0o755); err != nil {
		return err
	}
	img, err := gear.SingleLayerImage("ai-serving", "v1", fs, gear.ImageConfig{})
	if err != nil {
		return err
	}

	// 2. Convert with chunking: files above chunkSize split into pieces.
	conv, err := gear.NewConverter(gear.ConverterOptions{ChunkSize: chunkSize})
	if err != nil {
		return err
	}
	res, err := conv.Convert(img)
	if err != nil {
		return err
	}
	entry := res.Index.Lookup("/srv/model/weights.bin")
	fmt.Printf("model is %d bytes -> %d chunks of %d KB\n",
		entry.Size, len(entry.Chunks), chunkSize>>10)

	docker := gear.NewRegistry()
	files := gear.NewFileStore(gear.FileStoreOptions{Compress: true})
	if _, _, err := gear.Publish(res, docker, files); err != nil {
		return err
	}

	// 3. Deploy and read one 64 KB slice out of the middle of the model.
	daemon, err := gear.NewDaemon(docker, files, gear.DaemonOptions{})
	if err != nil {
		return err
	}
	if _, err := daemon.DeployGear("ai-serving", "v1", nil, 0); err != nil {
		return err
	}
	st := daemon.GearStore()
	view, err := st.Container("gear-1")
	if err != nil {
		return err
	}

	const off, n = 1<<20 + 7, 64 << 10
	slice, err := view.ReadAt("/srv/model/weights.bin", off, n)
	if err != nil {
		return err
	}
	stats := st.Stats()
	fmt.Printf("read model[%d:%d] (%d bytes)\n", off, off+n, len(slice))
	fmt.Printf("chunks fetched: %d of %d (%d B over the wire, not %d B)\n",
		stats.RemoteObjects, len(entry.Chunks), stats.RemoteBytes, modelSize)
	ok := true
	for i := range slice {
		if slice[i] != model[off+i] {
			ok = false
			break
		}
	}
	fmt.Printf("slice content correct: %v\n", ok)

	// 4. A full sequential read later reuses the cached chunks.
	full, err := view.ReadFile("/srv/model/weights.bin")
	if err != nil {
		return err
	}
	after := st.Stats()
	fmt.Printf("full read (%d bytes) fetched the remaining %d chunks\n",
		len(full), after.RemoteObjects-stats.RemoteObjects)
	return nil
}
