// Big model: the paper's future-work extension (§VII) — "enable Gear to
// read big files on demand in chunks to better accelerate containers
// that need to download big files, such as AI containers with big
// models" — implemented end to end.
//
// The same AI-serving image (one 4 MB model blob) is published twice:
// once with whole-file Gear, once with content-defined chunking. Both
// containers then read the same 64 KB slice of the model (an embedding
// lookup, say); the whole-file deployment stalls on the entire model,
// the chunked one only on the chunks the slice overlaps, faulted
// through the bounded fetch window.
//
// Run with:
//
//	go run ./examples/bigmodel
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	gear "github.com/gear-image/gear"
)

const (
	modelSize = 4 << 20
	chunkAvg  = 64 << 10
	windowCap = 512 << 10
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// deploy publishes img (converted under pol) into fresh registries and
// returns the running deployment plus its daemon. Chunked deploys fault
// through a bounded demand window.
func deploy(img *gear.Image, pol gear.ChunkPolicy) (*gear.Deployment, *gear.Daemon, error) {
	conv, err := gear.NewConverter(gear.ConverterOptions{Chunking: pol})
	if err != nil {
		return nil, nil, err
	}
	res, err := conv.Convert(img)
	if err != nil {
		return nil, nil, err
	}
	docker := gear.NewRegistry()
	files := gear.NewFileStore(gear.FileStoreOptions{Compress: true})
	if _, _, err := gear.Publish(res, docker, files); err != nil {
		return nil, nil, err
	}
	var dopts gear.DaemonOptions
	if pol.Enabled() {
		dopts.ChunkWindowBytes = windowCap
	}
	daemon, err := gear.NewDaemon(docker, files, dopts)
	if err != nil {
		return nil, nil, err
	}
	dep, err := daemon.DeployGear("ai-serving", "v1", nil, 0)
	if err != nil {
		return nil, nil, err
	}
	return dep, daemon, nil
}

func run() error {
	// 1. An AI-serving image: small code, one big model blob.
	fs := gear.NewFS()
	if err := fs.MkdirAll("/srv/model", 0o755); err != nil {
		return err
	}
	model := make([]byte, modelSize)
	rand.New(rand.NewSource(42)).Read(model)
	if err := fs.WriteFile("/srv/model/weights.bin", model, 0o644); err != nil {
		return err
	}
	if err := fs.WriteFile("/srv/serve.py", []byte("import model..."), 0o755); err != nil {
		return err
	}
	img, err := gear.SingleLayerImage("ai-serving", "v1", fs, gear.ImageConfig{})
	if err != nil {
		return err
	}

	// 2. Publish twice: whole-file Gear vs content-defined chunks.
	whole, _, err := deploy(img, gear.ChunkPolicy{})
	if err != nil {
		return err
	}
	chunked, chunkedDaemon, err := deploy(img, gear.CDCChunks(chunkAvg))
	if err != nil {
		return err
	}
	ix, err := chunkedDaemon.GearStore().Index("ai-serving:v1")
	if err != nil {
		return err
	}
	entry := ix.Lookup("/srv/model/weights.bin")
	fmt.Printf("model is %d bytes -> %d content-defined chunks (avg %d KB, window %d KB)\n",
		entry.Size, len(entry.Chunks), chunkAvg>>10, windowCap>>10)

	// 3. Both containers read the same 64 KB slice out of the middle.
	const off, n = 1<<20 + 7, 64 << 10
	wholeSlice, wholeStall, err := whole.ReadAt("/srv/model/weights.bin", off, n)
	if err != nil {
		return err
	}
	chunkSlice, chunkStall, err := chunked.ReadAt("/srv/model/weights.bin", off, n)
	if err != nil {
		return err
	}
	st := chunkedDaemon.GearStore().Stats()
	fmt.Printf("\nfirst read of model[%d:%d]:\n", off, off+n)
	fmt.Printf("  whole-file gear: %8s stall (%d bytes over the wire)\n",
		round(wholeStall), modelSize)
	fmt.Printf("  chunked gear:    %8s stall (%d chunks, %d bytes over the wire)\n",
		round(chunkStall), st.RemoteObjects, st.RemoteBytes)
	if chunkStall > 0 {
		fmt.Printf("  stall reduction: %.1fx\n", float64(wholeStall)/float64(chunkStall))
	}
	ok := bytes.Equal(wholeSlice, model[off:off+n]) && bytes.Equal(chunkSlice, wholeSlice)
	fmt.Printf("  slice content identical on both paths: %v\n", ok)

	// 4. A full sequential read faults the remaining chunks through the
	// bounded window and reuses what the slice already cached.
	full, _, err := chunked.Read("/srv/model/weights.bin")
	if err != nil {
		return err
	}
	after := chunkedDaemon.GearStore().Stats()
	fmt.Printf("\nfull read (%d bytes) fetched the remaining %d chunks; peak window %d KB\n",
		len(full), after.RemoteObjects-st.RemoteObjects,
		chunkedDaemon.GearStore().ChunkWindowPeak()>>10)
	return nil
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
