// Version rollout: a miniature of the paper's Fig 10 — one client
// deploys successive Tomcat versions under Docker (eager layer pull),
// Slacker (lazy 4 KB block paging, no sharing), and Gear (lazy file
// faults with a shared local cache), and prints each deployment's time
// at two link speeds.
//
// Run with:
//
//	go run ./examples/version_rollout
package main

import (
	"fmt"
	"log"
	"time"

	gear "github.com/gear-image/gear"
)

const (
	series   = "tomcat"
	versions = 8
	scale    = 0.5
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	workload, err := gear.NewWorkload(gear.WorkloadOptions{
		Seed: 11, Scale: scale, SeriesFilter: []string{series}, MaxVersions: versions,
	})
	if err != nil {
		return err
	}

	// Publish all versions to all three systems.
	dockerReg := gear.NewRegistry()
	fileReg := gear.NewFileStore(gear.FileStoreOptions{Compress: true})
	blockSrv := gear.NewSlackerServer()
	conv, err := gear.NewConverter(gear.ConverterOptions{})
	if err != nil {
		return err
	}
	tags := workload.Series()[0].Tags()
	for v := 0; v < versions; v++ {
		img, err := workload.Image(series, v)
		if err != nil {
			return err
		}
		if _, err := gear.PushImage(dockerReg, img); err != nil {
			return err
		}
		res, err := conv.Convert(img)
		if err != nil {
			return err
		}
		res.Index.Name = "gear/" + series
		ixImg, err := res.Index.ToImage()
		if err != nil {
			return err
		}
		res.IndexImage = ixImg
		if _, _, err := gear.Publish(res, dockerReg, fileReg); err != nil {
			return err
		}
		bi, err := gear.SlackerImage(img, 512)
		if err != nil {
			return err
		}
		blockSrv.Put(bi)
	}

	compute, err := workload.TaskCompute(series)
	if err != nil {
		return err
	}
	for _, mbps := range []float64{1000, 100} {
		link := gear.DefaultLAN()
		link.BytesPerSecond = mbps * 1e6 / 8 / 1000 * scale // scaled with the corpus

		// One persistent daemon per system: local state accumulates
		// across the rollout, exactly like the paper's single client.
		mk := func() (*gear.Daemon, error) {
			d, err := gear.NewDaemon(dockerReg, fileReg, gear.DaemonOptions{Link: link})
			if err == nil {
				d.ConfigureSlacker(blockSrv)
			}
			return d, err
		}
		dockerD, err := mk()
		if err != nil {
			return err
		}
		slackerD, err := mk()
		if err != nil {
			return err
		}
		gearD, err := mk()
		if err != nil {
			return err
		}

		fmt.Printf("\n-- %s rollout at %g Mbps (paper scale) --\n", series, mbps)
		fmt.Printf("%-8s %12s %12s %12s\n", "version", "docker", "slacker", "gear")
		var sumD, sumS, sumG time.Duration
		for v := 0; v < versions; v++ {
			items, err := workload.NecessarySet(series, v)
			if err != nil {
				return err
			}
			access := make([]string, len(items))
			for i, it := range items {
				access[i] = it.Path
			}
			dd, err := dockerD.DeployDocker(series, tags[v], access, compute)
			if err != nil {
				return err
			}
			sd, err := slackerD.DeploySlacker(series, tags[v], access, compute)
			if err != nil {
				return err
			}
			gd, err := gearD.DeployGear("gear/"+series, tags[v], access, compute)
			if err != nil {
				return err
			}
			fmt.Printf("%-8s %12s %12s %12s\n", tags[v],
				dd.Total().Round(time.Millisecond),
				sd.Total().Round(time.Millisecond),
				gd.Total().Round(time.Millisecond))
			sumD += dd.Total()
			sumS += sd.Total()
			sumG += gd.Total()
		}
		n := time.Duration(versions)
		fmt.Printf("%-8s %12s %12s %12s\n", "avg",
			(sumD / n).Round(time.Millisecond),
			(sumS / n).Round(time.Millisecond),
			(sumG / n).Round(time.Millisecond))
	}
	fmt.Println("\nGear keeps improving across versions (file-level sharing); Slacker cannot share;")
	fmt.Println("Docker recovers some ground only when whole layers are identical.")
	return nil
}
