// BenchmarkExtFleet sweeps the fleet scenario harness across fleet
// sizes 16→1024: one flash-crowd rollout per iteration over a shared
// pre-built workload, so the timing isolates scenario execution (joins,
// deploys, peer exchange, accounting) from corpus construction.
package gear_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/gear-image/gear/internal/fleet"
)

var (
	fleetBenchOnce sync.Once
	fleetBenchWL   *fleet.Workload
	fleetBenchErr  error
)

// fleetBenchWorkload builds the benchmark workload once per process.
func fleetBenchWorkload(b *testing.B) *fleet.Workload {
	b.Helper()
	fleetBenchOnce.Do(func() {
		fleetBenchWL, fleetBenchErr = fleet.BuildWorkload(fleet.WorkloadOptions{
			Seed:     20211107,
			Scale:    0.2,
			Series:   "nginx",
			Versions: 2,
		})
	})
	if fleetBenchErr != nil {
		b.Fatal(fleetBenchErr)
	}
	return fleetBenchWL
}

func BenchmarkExtFleet(b *testing.B) {
	wl := fleetBenchWorkload(b)
	for _, nodes := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("flashcrowd/nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h, err := fleet.New(wl, fleet.Options{Nodes: nodes, Seed: 42, Peers: true})
				if err != nil {
					b.Fatal(err)
				}
				res, err := h.Run(fleet.FlashCrowd)
				if err != nil {
					b.Fatal(err)
				}
				if res.TotalDeploys != int64(nodes) {
					b.Fatalf("deploys = %d, want %d", res.TotalDeploys, nodes)
				}
			}
		})
	}
}
