package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/peer"
	"github.com/gear-image/gear/internal/prefetch"
	"github.com/gear-image/gear/internal/registry"
	"github.com/gear-image/gear/internal/shardreg"
	"github.com/gear-image/gear/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestSplitRef(t *testing.T) {
	tests := []struct {
		in        string
		name, tag string
		ok        bool
	}{
		{"nginx:v01", "nginx", "v01", true},
		{"gear/nginx:v01", "gear/nginx", "v01", true},
		{"a:b:c", "a:b", "c", true},
		{"noTag", "", "", false},
		{":tagonly", "", "", false},
		{"nameonly:", "", "", false},
		{"", "", "", false},
	}
	for _, tt := range tests {
		name, tag, err := splitRef(tt.in)
		if (err == nil) != tt.ok {
			t.Errorf("splitRef(%q) err = %v", tt.in, err)
			continue
		}
		if err == nil && (name != tt.name || tag != tt.tag) {
			t.Errorf("splitRef(%q) = %q,%q, want %q,%q", tt.in, name, tag, tt.name, tt.tag)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("empty args err = %v", err)
	}
	if err := run([]string{"bogus"}); err == nil || !strings.Contains(err.Error(), "unknown subcommand") {
		t.Errorf("bogus subcommand err = %v", err)
	}
}

// TestSeedListIndexDeployGC drives every subcommand against live HTTP
// registries — the CLI's full integration path.
func TestSeedListIndexDeployGC(t *testing.T) {
	dockerSrv := httptest.NewServer(registry.NewHandler(registry.New()))
	defer dockerSrv.Close()
	gearSrv := httptest.NewServer(gearregistry.NewHandler(gearregistry.New(gearregistry.Options{Compress: true})))
	defer gearSrv.Close()

	steps := [][]string{
		{"seed", "-docker", dockerSrv.URL, "-gear", gearSrv.URL,
			"-series", "redis", "-versions", "2", "-scale", "0.2"},
		{"list", "-docker", dockerSrv.URL},
		{"index", "-docker", dockerSrv.URL, "-image", "gear/redis:v01"},
		{"deploy", "-docker", dockerSrv.URL, "-gear", gearSrv.URL,
			"-image", "gear/redis:v02", "-mode", "gear", "-mbps", "100", "-scale", "0.2"},
		{"deploy", "-docker", dockerSrv.URL, "-gear", gearSrv.URL,
			"-image", "redis:v01", "-mode", "docker", "-scale", "0.2"},
		{"gc", "-docker", dockerSrv.URL, "-gear", gearSrv.URL},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("gearctl %s: %v", strings.Join(args, " "), err)
		}
	}
	// Deploying a missing image fails cleanly.
	err := run([]string{"deploy", "-docker", dockerSrv.URL, "-gear", gearSrv.URL,
		"-image", "ghost-img:v01", "-series", "redis", "-scale", "0.2"})
	if err == nil {
		t.Error("missing image deployed")
	}
}

// TestPeersSubcommand drives gearctl peers against a live HTTP tracker.
func TestPeersSubcommand(t *testing.T) {
	tr := peer.NewTracker()
	tr.Announce("node0", hashing.FingerprintBytes([]byte("a")), hashing.FingerprintBytes([]byte("b")))
	tr.Announce("node1", hashing.FingerprintBytes([]byte("a")))
	tr.ReportServed(3, 4096, 2, 1024)
	srv := httptest.NewServer(peer.NewTrackerHandler(tr))
	defer srv.Close()

	if err := run([]string{"peers", "-tracker", srv.URL}); err != nil {
		t.Fatalf("gearctl peers: %v", err)
	}
	// An unreachable tracker fails cleanly.
	srv.Close()
	if err := run([]string{"peers", "-tracker", srv.URL}); err == nil {
		t.Error("peers against a dead tracker succeeded")
	}
}

// TestProfileSubcommand drives gearctl profile (list, dump, delete)
// against a live HTTP profile library.
func TestProfileSubcommand(t *testing.T) {
	lib := prefetch.NewLibrary()
	if err := lib.Put(&prefetch.Profile{
		ImageRef: "gear/nginx:v01",
		Entries: []prefetch.Entry{
			{Fingerprint: hashing.FingerprintBytes([]byte("a")), Size: 100},
			{Fingerprint: hashing.FingerprintBytes([]byte("b")), Size: 200},
		},
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(prefetch.NewLibraryHandler(lib))
	defer srv.Close()

	steps := [][]string{
		{"profile", "-library", srv.URL},
		{"profile", "-library", srv.URL, "-dump", "gear/nginx:v01"},
		{"profile", "-library", srv.URL, "-delete", "gear/nginx:v01"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("gearctl %s: %v", strings.Join(args, " "), err)
		}
	}
	if lib.Len() != 0 {
		t.Errorf("library holds %d profiles after delete", lib.Len())
	}
	// Dumping the deleted profile fails cleanly, as does mixing actions.
	if err := run([]string{"profile", "-library", srv.URL, "-dump", "gear/nginx:v01"}); err == nil {
		t.Error("dump of a deleted profile succeeded")
	}
	if err := run([]string{"profile", "-library", srv.URL,
		"-dump", "a:b", "-delete", "a:b"}); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("mixed actions err = %v", err)
	}
}

// statsRegistry builds a deterministic fixture resembling a daemon's
// registry, for golden-file rendering of the stats subcommand.
func statsRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	reg.Counter("store.remote.objects").Add(40)
	reg.Counter("store.remote.bytes").Add(1_048_576)
	reg.Counter("store.prefetch.hits").Add(25)
	reg.Counter("cache.hits").Add(90)
	reg.Counter("cache.misses").Add(40)
	reg.Gauge("cache.bytes").Set(524_288)
	reg.Gauge("store.indexes").Set(2)
	h := reg.Histogram("store.demand.stall", telemetry.DefaultLatencyBounds)
	h.Observe(100_000)
	h.Observe(40_000_000)
	return reg
}

func checkStatsGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (rerun with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestStatsSubcommand drives gearctl stats against a live /metrics
// endpoint: golden text and JSON rendering, plus the -save / -diff
// round trip used for before/after deltas.
func TestStatsSubcommand(t *testing.T) {
	reg := statsRegistry()
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(reg))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var text bytes.Buffer
	if err := cmdStats([]string{"-url", srv.URL}, &text); err != nil {
		t.Fatalf("gearctl stats: %v", err)
	}
	checkStatsGolden(t, "stats.txt", text.Bytes())

	var js bytes.Buffer
	if err := cmdStats([]string{"-url", srv.URL, "-json"}, &js); err != nil {
		t.Fatalf("gearctl stats -json: %v", err)
	}
	checkStatsGolden(t, "stats.json", js.Bytes())

	// Save a baseline, publish more traffic, and diff: only the delta
	// shows for counters while gauges keep their current values.
	saved := filepath.Join(t.TempDir(), "before.json")
	if err := cmdStats([]string{"-url", srv.URL, "-save", saved}, io.Discard); err != nil {
		t.Fatalf("gearctl stats -save: %v", err)
	}
	reg.Counter("store.remote.objects").Add(5)
	reg.Gauge("cache.bytes").Set(600_000)
	var diff bytes.Buffer
	if err := cmdStats([]string{"-url", srv.URL, "-json", "-diff", saved}, &diff); err != nil {
		t.Fatalf("gearctl stats -diff: %v", err)
	}
	snap, err := telemetry.DecodeSnapshot(diff.Bytes())
	if err != nil {
		t.Fatalf("decode diff output: %v", err)
	}
	if got := snap.Counter("store.remote.objects"); got != 5 {
		t.Errorf("diffed counter = %d, want 5", got)
	}
	if got := snap.Counter("cache.hits"); got != 0 {
		t.Errorf("unchanged counter diff = %d, want 0", got)
	}
	if got := snap.Gauge("cache.bytes"); got != 600_000 {
		t.Errorf("gauge after diff = %d, want current value 600000", got)
	}

	// Error paths: dead server, and a diff file that does not exist.
	srv.Close()
	if err := cmdStats([]string{"-url", srv.URL}, io.Discard); err == nil {
		t.Error("stats against a dead server succeeded")
	}
	if err := cmdStats([]string{"-url", srv.URL, "-diff", "/nonexistent"}, io.Discard); err == nil {
		t.Error("stats with a missing diff file succeeded")
	}
}

// TestFleetSubcommand runs a small in-process fleet scenario through
// the CLI: the table render, the -json canonical form, determinism of
// the reported fingerprint across invocations, and the error paths.
func TestFleetSubcommand(t *testing.T) {
	args := []string{"-scenario", "flashcrowd", "-nodes", "8", "-seed", "7", "-scale", "0.2", "-versions", "2"}
	var a, b bytes.Buffer
	if err := cmdFleet(args, &a); err != nil {
		t.Fatalf("gearctl fleet: %v", err)
	}
	if err := cmdFleet(args, &b); err != nil {
		t.Fatalf("gearctl fleet (replay): %v", err)
	}
	if a.String() != b.String() {
		t.Errorf("fleet output not reproducible:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "fingerprint: ") {
		t.Errorf("fleet output missing fingerprint line:\n%s", a.String())
	}
	if !strings.Contains(a.String(), "total: 8 deploys") {
		t.Errorf("fleet output missing deploy total:\n%s", a.String())
	}

	var js bytes.Buffer
	if err := cmdFleet(append(args, "-json"), &js); err != nil {
		t.Fatalf("gearctl fleet -json: %v", err)
	}
	var res struct {
		Scenario     string `json:"scenario"`
		Nodes        int    `json:"nodes"`
		TotalDeploys int64  `json:"totalDeploys"`
	}
	if err := json.Unmarshal(js.Bytes(), &res); err != nil {
		t.Fatalf("fleet -json output: %v", err)
	}
	if res.Scenario != "flashcrowd" || res.Nodes != 8 || res.TotalDeploys != 8 {
		t.Errorf("fleet -json = %+v, want flashcrowd/8/8", res)
	}

	if err := cmdFleet([]string{"-scenario", "bogus", "-nodes", "4"}, io.Discard); err == nil {
		t.Error("fleet with unknown scenario succeeded")
	}
	if err := cmdFleet([]string{"-nodes", "0"}, io.Discard); err == nil {
		t.Error("fleet with zero nodes succeeded")
	}
}

// TestShardsSubcommand builds the deterministic in-process shard tier
// and checks the golden table and JSON renders, reproducibility, and
// the validation error paths.
func TestShardsSubcommand(t *testing.T) {
	args := []string{"-shards", "4", "-replicas", "2", "-scale", "0.2", "-versions", "2", "-seed", "7"}
	var a, b bytes.Buffer
	if err := cmdShards(args, &a); err != nil {
		t.Fatalf("gearctl shards: %v", err)
	}
	if err := cmdShards(args, &b); err != nil {
		t.Fatalf("gearctl shards (replay): %v", err)
	}
	if a.String() != b.String() {
		t.Errorf("shards output not reproducible:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.String(), b.String())
	}
	checkStatsGolden(t, "shards.txt", a.Bytes())

	var js bytes.Buffer
	if err := cmdShards(append(args, "-json"), &js); err != nil {
		t.Fatalf("gearctl shards -json: %v", err)
	}
	checkStatsGolden(t, "shards.json", js.Bytes())
	var st shardreg.Stats
	if err := json.Unmarshal(js.Bytes(), &st); err != nil {
		t.Fatalf("shards -json output: %v", err)
	}
	if len(st.Shards) != 4 || st.Replication != 2 {
		t.Fatalf("shards -json = %d shards x %d replicas, want 4x2", len(st.Shards), st.Replication)
	}
	var objects int
	var share float64
	for _, s := range st.Shards {
		objects += s.Objects
		share += s.OwnedShare
		if s.Down {
			t.Errorf("%s reported down in a fresh tier", s.ID)
		}
	}
	if objects != st.Objects {
		t.Errorf("per-shard objects sum %d != tier total %d", objects, st.Objects)
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("owned shares sum to %f, want 1", share)
	}

	// Read passes with balancing, hedging, and an auto-picked straggler:
	// the read-split and hedge columns land in the table and the JSON,
	// and the run stays bit-reproducible.
	hedged := append(args, "-readpass", "3", "-balance", "-hedge", "-slow", "auto")
	var h1, h2 bytes.Buffer
	if err := cmdShards(hedged, &h1); err != nil {
		t.Fatalf("gearctl shards (hedged): %v", err)
	}
	if err := cmdShards(hedged, &h2); err != nil {
		t.Fatalf("gearctl shards (hedged replay): %v", err)
	}
	if h1.String() != h2.String() {
		t.Errorf("hedged shards output not reproducible:\n--- run 1 ---\n%s--- run 2 ---\n%s", h1.String(), h2.String())
	}
	checkStatsGolden(t, "shards_hedged.txt", h1.Bytes())
	var hjs bytes.Buffer
	if err := cmdShards(append(hedged, "-json"), &hjs); err != nil {
		t.Fatalf("gearctl shards (hedged) -json: %v", err)
	}
	checkStatsGolden(t, "shards_hedged.json", hjs.Bytes())
	var hst shardreg.Stats
	if err := json.Unmarshal(hjs.Bytes(), &hst); err != nil {
		t.Fatalf("hedged shards -json output: %v", err)
	}
	if hst.Reads == 0 || hst.BalancedReads == 0 {
		t.Errorf("hedged read pass served %d reads (%d balanced), want both > 0",
			hst.Reads, hst.BalancedReads)
	}
	var shareSum float64
	for _, s := range hst.Shards {
		shareSum += s.ReadShare
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Errorf("read shares sum to %f, want 1", shareSum)
	}

	if err := cmdShards([]string{"-shards", "0"}, io.Discard); err == nil {
		t.Error("shards with zero shards succeeded")
	}
	if err := cmdShards([]string{"-shards", "2", "-replicas", "5"}, io.Discard); err == nil {
		t.Error("shards with replication above the member count succeeded")
	}
}
