package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/peer"
	"github.com/gear-image/gear/internal/prefetch"
	"github.com/gear-image/gear/internal/registry"
)

func TestSplitRef(t *testing.T) {
	tests := []struct {
		in        string
		name, tag string
		ok        bool
	}{
		{"nginx:v01", "nginx", "v01", true},
		{"gear/nginx:v01", "gear/nginx", "v01", true},
		{"a:b:c", "a:b", "c", true},
		{"noTag", "", "", false},
		{":tagonly", "", "", false},
		{"nameonly:", "", "", false},
		{"", "", "", false},
	}
	for _, tt := range tests {
		name, tag, err := splitRef(tt.in)
		if (err == nil) != tt.ok {
			t.Errorf("splitRef(%q) err = %v", tt.in, err)
			continue
		}
		if err == nil && (name != tt.name || tag != tt.tag) {
			t.Errorf("splitRef(%q) = %q,%q, want %q,%q", tt.in, name, tag, tt.name, tt.tag)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("empty args err = %v", err)
	}
	if err := run([]string{"bogus"}); err == nil || !strings.Contains(err.Error(), "unknown subcommand") {
		t.Errorf("bogus subcommand err = %v", err)
	}
}

// TestSeedListIndexDeployGC drives every subcommand against live HTTP
// registries — the CLI's full integration path.
func TestSeedListIndexDeployGC(t *testing.T) {
	dockerSrv := httptest.NewServer(registry.NewHandler(registry.New()))
	defer dockerSrv.Close()
	gearSrv := httptest.NewServer(gearregistry.NewHandler(gearregistry.New(gearregistry.Options{Compress: true})))
	defer gearSrv.Close()

	steps := [][]string{
		{"seed", "-docker", dockerSrv.URL, "-gear", gearSrv.URL,
			"-series", "redis", "-versions", "2", "-scale", "0.2"},
		{"list", "-docker", dockerSrv.URL},
		{"index", "-docker", dockerSrv.URL, "-image", "gear/redis:v01"},
		{"deploy", "-docker", dockerSrv.URL, "-gear", gearSrv.URL,
			"-image", "gear/redis:v02", "-mode", "gear", "-mbps", "100", "-scale", "0.2"},
		{"deploy", "-docker", dockerSrv.URL, "-gear", gearSrv.URL,
			"-image", "redis:v01", "-mode", "docker", "-scale", "0.2"},
		{"gc", "-docker", dockerSrv.URL, "-gear", gearSrv.URL},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("gearctl %s: %v", strings.Join(args, " "), err)
		}
	}
	// Deploying a missing image fails cleanly.
	err := run([]string{"deploy", "-docker", dockerSrv.URL, "-gear", gearSrv.URL,
		"-image", "ghost-img:v01", "-series", "redis", "-scale", "0.2"})
	if err == nil {
		t.Error("missing image deployed")
	}
}

// TestPeersSubcommand drives gearctl peers against a live HTTP tracker.
func TestPeersSubcommand(t *testing.T) {
	tr := peer.NewTracker()
	tr.Announce("node0", hashing.FingerprintBytes([]byte("a")), hashing.FingerprintBytes([]byte("b")))
	tr.Announce("node1", hashing.FingerprintBytes([]byte("a")))
	tr.ReportServed(3, 4096, 2, 1024)
	srv := httptest.NewServer(peer.NewTrackerHandler(tr))
	defer srv.Close()

	if err := run([]string{"peers", "-tracker", srv.URL}); err != nil {
		t.Fatalf("gearctl peers: %v", err)
	}
	// An unreachable tracker fails cleanly.
	srv.Close()
	if err := run([]string{"peers", "-tracker", srv.URL}); err == nil {
		t.Error("peers against a dead tracker succeeded")
	}
}

// TestProfileSubcommand drives gearctl profile (list, dump, delete)
// against a live HTTP profile library.
func TestProfileSubcommand(t *testing.T) {
	lib := prefetch.NewLibrary()
	if err := lib.Put(&prefetch.Profile{
		ImageRef: "gear/nginx:v01",
		Entries: []prefetch.Entry{
			{Fingerprint: hashing.FingerprintBytes([]byte("a")), Size: 100},
			{Fingerprint: hashing.FingerprintBytes([]byte("b")), Size: 200},
		},
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(prefetch.NewLibraryHandler(lib))
	defer srv.Close()

	steps := [][]string{
		{"profile", "-library", srv.URL},
		{"profile", "-library", srv.URL, "-dump", "gear/nginx:v01"},
		{"profile", "-library", srv.URL, "-delete", "gear/nginx:v01"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("gearctl %s: %v", strings.Join(args, " "), err)
		}
	}
	if lib.Len() != 0 {
		t.Errorf("library holds %d profiles after delete", lib.Len())
	}
	// Dumping the deleted profile fails cleanly, as does mixing actions.
	if err := run([]string{"profile", "-library", srv.URL, "-dump", "gear/nginx:v01"}); err == nil {
		t.Error("dump of a deleted profile succeeded")
	}
	if err := run([]string{"profile", "-library", srv.URL,
		"-dump", "a:b", "-delete", "a:b"}); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("mixed actions err = %v", err)
	}
}
