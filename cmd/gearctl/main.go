// Command gearctl drives Gear registries: it seeds them with synthetic
// workload images (originals plus converted Gear images), lists what a
// registry holds, inspects Gear indexes, and deploys containers against
// remote registries while reporting phase timing and transfer volumes.
//
// Usage:
//
//	gearctl seed   -docker URL -gear URL -series nginx -versions 3
//	gearctl list   -docker URL
//	gearctl index  -docker URL -image gear/nginx:v01
//	gearctl deploy -docker URL -gear URL -image gear/nginx:v01 -mode gear -mbps 100
//	gearctl gc     -docker URL -gear URL
//	gearctl peers  -tracker URL
//	gearctl profile -library URL [-dump name:tag | -delete name:tag]
//	gearctl stats  -url URL [-path /metrics] [-json] [-diff FILE] [-save FILE]
//	gearctl fleet  -scenario flashcrowd -nodes 64 -seed 7 [-shards 4 -balance -hedge] [-json]
//	gearctl shards -shards 4 -replicas 2 [-readpass 3 -balance -hedge -slow auto] [-json]
//
// The deploy subcommand's -mode selects the Docker baseline ("docker",
// full image pull) or Gear ("gear", lazy index pull). Bandwidth is the
// simulated link; transfer byte counts are exact HTTP volumes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/gear-image/gear/internal/corpus"
	"github.com/gear-image/gear/internal/dockersim"
	"github.com/gear-image/gear/internal/fleet"
	"github.com/gear-image/gear/internal/gear/convert"
	"github.com/gear-image/gear/internal/gear/index"
	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/hashing"
	"github.com/gear-image/gear/internal/netsim"
	"github.com/gear-image/gear/internal/peer"
	"github.com/gear-image/gear/internal/prefetch"
	"github.com/gear-image/gear/internal/registry"
	"github.com/gear-image/gear/internal/shardreg"
	"github.com/gear-image/gear/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gearctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: gearctl <seed|list|index|deploy|fleet> [flags]")
	}
	switch args[0] {
	case "seed":
		return cmdSeed(args[1:])
	case "list":
		return cmdList(args[1:])
	case "index":
		return cmdIndex(args[1:])
	case "deploy":
		return cmdDeploy(args[1:])
	case "gc":
		return cmdGC(args[1:])
	case "peers":
		return cmdPeers(args[1:])
	case "profile":
		return cmdProfile(args[1:])
	case "stats":
		return cmdStats(args[1:], os.Stdout)
	case "fleet":
		return cmdFleet(args[1:], os.Stdout)
	case "shards":
		return cmdShards(args[1:], os.Stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want seed, list, index, deploy, gc, peers, profile, stats, fleet, or shards)", args[0])
	}
}

func splitRef(ref string) (name, tag string, err error) {
	i := strings.LastIndex(ref, ":")
	if i <= 0 || i == len(ref)-1 {
		return "", "", fmt.Errorf("image reference %q: want name:tag", ref)
	}
	return ref[:i], ref[i+1:], nil
}

func cmdSeed(args []string) error {
	fs := flag.NewFlagSet("seed", flag.ContinueOnError)
	var (
		dockerURL = fs.String("docker", "http://localhost:7000", "docker registry URL")
		gearURL   = fs.String("gear", "http://localhost:7001", "gear registry URL")
		series    = fs.String("series", "nginx", "workload series to seed")
		versions  = fs.Int("versions", 3, "number of versions")
		scale     = fs.Float64("scale", 1.0, "workload scale")
		seed      = fs.Int64("seed", 20211107, "workload seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	co, err := corpus.New(corpus.Options{
		Seed: *seed, Scale: *scale,
		SeriesFilter: []string{*series}, MaxVersions: *versions,
	})
	if err != nil {
		return err
	}
	docker := registry.NewClient(*dockerURL, nil)
	gearStore := gearregistry.NewClient(*gearURL, nil)
	conv, err := convert.New(convert.Options{})
	if err != nil {
		return err
	}
	s := co.Series()[0]
	for v := 0; v < s.NumVersions; v++ {
		img, err := co.Image(s.Name, v)
		if err != nil {
			return err
		}
		pushed, err := registry.Push(docker, img)
		if err != nil {
			return err
		}
		res, err := conv.Convert(img)
		if err != nil {
			return err
		}
		res.Index.Name = "gear/" + s.Name
		ixImg, err := res.Index.ToImage()
		if err != nil {
			return err
		}
		res.IndexImage = ixImg
		ixBytes, fileBytes, err := convert.Publish(res, docker, gearStore)
		if err != nil {
			return err
		}
		fmt.Printf("seeded %s:%s: image %d B, index %d B, new gear files %d B (conversion %v)\n",
			s.Name, s.Tags()[v], pushed, ixBytes, fileBytes, res.Timing.Total().Round(time.Millisecond))
	}
	return nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	dockerURL := fs.String("docker", "http://localhost:7000", "docker registry URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	refs, err := registry.NewClient(*dockerURL, nil).ListManifests()
	if err != nil {
		return err
	}
	for _, ref := range refs {
		fmt.Println(ref)
	}
	return nil
}

func cmdIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ContinueOnError)
	var (
		dockerURL = fs.String("docker", "http://localhost:7000", "docker registry URL")
		image     = fs.String("image", "", "gear index image reference (name:tag)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	name, tag, err := splitRef(*image)
	if err != nil {
		return err
	}
	img, err := registry.Pull(registry.NewClient(*dockerURL, nil), name, tag)
	if err != nil {
		return err
	}
	ix, err := index.FromImage(img)
	if err != nil {
		return err
	}
	st, err := ix.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("index %s: %d dirs, %d files (%d unique), %d symlinks\n",
		ix.Reference(), st.Dirs, st.Files, st.UniqueFiles, st.Symlinks)
	fmt.Printf("index size %d B; referenced data %d B (%.2f%% metadata)\n",
		st.IndexBytes, st.DataBytes, 100*float64(st.IndexBytes)/float64(st.DataBytes))
	return nil
}

// cmdGC collects every fingerprint referenced by the Gear index images
// still in the Docker registry and asks the Gear registry to retain only
// those — the reference-driven file deletion that the three-level
// lifecycle decoupling calls for.
func cmdGC(args []string) error {
	fs := flag.NewFlagSet("gc", flag.ContinueOnError)
	var (
		dockerURL = fs.String("docker", "http://localhost:7000", "docker registry URL")
		gearURL   = fs.String("gear", "http://localhost:7001", "gear registry URL")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	docker := registry.NewClient(*dockerURL, nil)
	refs, err := docker.ListManifests()
	if err != nil {
		return err
	}
	keepSet := make(map[string]bool)
	var keep []hashing.Fingerprint
	indexImages := 0
	for _, ref := range refs {
		name, tag, err := splitRef(ref)
		if err != nil {
			return err
		}
		img, err := registry.Pull(docker, name, tag)
		if err != nil {
			return err
		}
		ix, err := index.FromImage(img)
		if err != nil {
			continue // not a gear index image
		}
		indexImages++
		for _, fileRef := range ix.Files() {
			if !keepSet[string(fileRef.Fingerprint)] {
				keepSet[string(fileRef.Fingerprint)] = true
				keep = append(keep, fileRef.Fingerprint)
			}
		}
	}
	removed, freed, err := gearregistry.NewClient(*gearURL, nil).GC(keep)
	if err != nil {
		return err
	}
	fmt.Printf("gc: %d index images reference %d files; removed %d orphans, freed %d B\n",
		indexImages, len(keep), removed, freed)
	return nil
}

// cmdPeers reports a cluster tracker's view of peer-to-peer
// distribution: how many Gear files are tracked across how many
// holders, and how much deployment traffic the fleet served from peers
// instead of the registry.
func cmdPeers(args []string) error {
	fs := flag.NewFlagSet("peers", flag.ContinueOnError)
	trackerURL := fs.String("tracker", "http://localhost:7002", "peer tracker URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := peer.NewTrackerClient(*trackerURL, nil).Stats()
	if err != nil {
		return err
	}
	fmt.Printf("tracker %s\n", *trackerURL)
	fmt.Printf("tracked: %d gear files across %d holders (%d announces, %d withdraws)\n",
		st.Fingerprints, st.Holders, st.Announces, st.Withdraws)
	total := st.PeerBytes + st.RegistryBytes
	fmt.Printf("served p2p:      %d files, %d B\n", st.PeerObjects, st.PeerBytes)
	fmt.Printf("served registry: %d files, %d B\n", st.RegistryObjects, st.RegistryBytes)
	if total > 0 {
		fmt.Printf("peer share: %.1f%% of %d B total\n", 100*float64(st.PeerBytes)/float64(total), total)
	}
	return nil
}

// cmdProfile inspects a daemon's persisted startup profiles: which
// images have a recorded access trace, how big the traces are, and the
// exact fetch order a redeploy will replay. With no action flag it
// lists; -dump prints one profile's entries; -delete prunes one.
func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	var (
		libraryURL = fs.String("library", "http://localhost:7003", "profile library URL")
		dumpRef    = fs.String("dump", "", "print this image's startup profile (name:tag)")
		deleteRef  = fs.String("delete", "", "delete this image's startup profile (name:tag)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dumpRef != "" && *deleteRef != "" {
		return fmt.Errorf("profile: -dump and -delete are mutually exclusive")
	}
	client := prefetch.NewLibraryClient(*libraryURL, nil)
	switch {
	case *dumpRef != "":
		p, err := client.Dump(*dumpRef)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d entries, %d B in first-access order\n",
			p.ImageRef, len(p.Entries), p.TotalBytes())
		for i, e := range p.Entries {
			fmt.Printf("%4d %s %d\n", i, e.Fingerprint, e.Size)
		}
	case *deleteRef != "":
		if err := client.Delete(*deleteRef); err != nil {
			return err
		}
		fmt.Printf("deleted profile %s\n", *deleteRef)
	default:
		infos, err := client.List()
		if err != nil {
			return err
		}
		fmt.Printf("library %s: %d profiles\n", *libraryURL, len(infos))
		for _, info := range infos {
			if info.Entries < 0 {
				fmt.Printf("%s corrupt (%d B)\n", info.Ref, info.Bytes)
				continue
			}
			fmt.Printf("%s %d entries %d B\n", info.Ref, info.Entries, info.Bytes)
		}
	}
	return nil
}

// cmdStats fetches a server's unified telemetry snapshot (any endpoint
// serving telemetry.Handler: a gear-registry's or docker-registry's
// /metrics, a tracker's /peer/metrics, a library's /profile/metrics),
// optionally diffs it against a previously saved snapshot, and renders
// it as text or JSON. -save persists the raw (undiffed) snapshot so a
// later invocation can -diff against it.
func cmdStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	var (
		url      = fs.String("url", "http://localhost:7001", "server base URL")
		path     = fs.String("path", "/metrics", "metrics endpoint path")
		jsonOut  = fs.Bool("json", false, "emit the snapshot as JSON instead of text")
		diffFile = fs.String("diff", "", "subtract the snapshot saved in this file before printing")
		saveFile = fs.String("save", "", "write the raw snapshot (JSON) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := http.Get(strings.TrimSuffix(*url, "/") + *path)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stats: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	snap, err := telemetry.DecodeSnapshot(body)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			return fmt.Errorf("stats: save: %w", err)
		}
		err = telemetry.EncodeSnapshot(f, snap)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("stats: save: %w", err)
		}
	}
	if *diffFile != "" {
		prev, err := os.ReadFile(*diffFile)
		if err != nil {
			return fmt.Errorf("stats: diff: %w", err)
		}
		prevSnap, err := telemetry.DecodeSnapshot(prev)
		if err != nil {
			return fmt.Errorf("stats: diff: %w", err)
		}
		snap = snap.Diff(prevSnap)
	}
	if *jsonOut {
		return telemetry.EncodeSnapshot(out, snap)
	}
	telemetry.WriteText(out, snap)
	return nil
}

func cmdDeploy(args []string) error {
	fs := flag.NewFlagSet("deploy", flag.ContinueOnError)
	var (
		dockerURL = fs.String("docker", "http://localhost:7000", "docker registry URL")
		gearURL   = fs.String("gear", "http://localhost:7001", "gear registry URL")
		image     = fs.String("image", "", "image reference (name:tag)")
		mode      = fs.String("mode", "gear", "deployment mode: gear or docker")
		mbps      = fs.Float64("mbps", 904, "simulated link bandwidth, Mbps")
		series    = fs.String("series", "", "workload series for the launch access list (default: derived from the image name)")
		scale     = fs.Float64("scale", 1.0, "workload scale (must match seed)")
		seed      = fs.Int64("seed", 20211107, "workload seed (must match seed)")
		trace     = fs.Bool("trace", false, "print the slowest run-phase accesses")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	name, tag, err := splitRef(*image)
	if err != nil {
		return err
	}
	seriesName := *series
	if seriesName == "" {
		seriesName = strings.TrimPrefix(name, "gear/")
	}
	co, err := corpus.New(corpus.Options{
		Seed: *seed, Scale: *scale, SeriesFilter: []string{seriesName},
	})
	if err != nil {
		return err
	}
	version := 0
	for i, t := range co.Series()[0].Tags() {
		if t == tag {
			version = i
			break
		}
	}
	items, err := co.NecessarySet(seriesName, version)
	if err != nil {
		return err
	}
	access := make([]string, len(items))
	for i, it := range items {
		access[i] = it.Path
	}
	compute, err := co.TaskCompute(seriesName)
	if err != nil {
		return err
	}

	daemon, err := dockersim.NewDaemon(
		registry.NewClient(*dockerURL, nil),
		gearregistry.NewClient(*gearURL, nil),
		dockersim.Options{
			Link:  netsim.DefaultLAN().WithBandwidth(*mbps / 1000 * *scale),
			Trace: *trace,
		},
	)
	if err != nil {
		return err
	}

	var dep *dockersim.Deployment
	switch *mode {
	case "gear":
		dep, err = daemon.DeployGear(name, tag, access, compute)
	case "docker":
		dep, err = daemon.DeployDocker(name, tag, access, compute)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		return err
	}
	fmt.Printf("deployed %s (%s mode) as %s\n", *image, *mode, dep.ContainerID)
	fmt.Printf("pull: %v, %d B, %d requests\n",
		dep.Pull.Time.Round(time.Millisecond), dep.Pull.Bytes, dep.Pull.Requests)
	fmt.Printf("run:  %v, %d B, %d requests\n",
		dep.Run.Time.Round(time.Millisecond), dep.Run.Bytes, dep.Run.Requests)
	fmt.Printf("total: %v\n", dep.Total().Round(time.Millisecond))
	if *trace {
		events := dep.Events
		sort.Slice(events, func(i, j int) bool { return events[i].Cost > events[j].Cost })
		if len(events) > 10 {
			events = events[:10]
		}
		fmt.Println("slowest accesses:")
		for _, e := range events {
			origin := "local"
			if e.RemoteBytes > 0 {
				origin = fmt.Sprintf("remote %d B / %d req", e.RemoteBytes, e.Requests)
			}
			fmt.Printf("  %-45s %10v  %s\n", e.Path, e.Cost.Round(time.Microsecond), origin)
		}
	}
	return nil
}

// cmdShards builds a deterministic in-process sharded registry tier
// from the synthetic workload and prints its placement: the consistent-
// hash ring's per-shard primary ownership, what each shard actually
// stores after replication, and the tier totals. Same workload flags as
// fleet, so the tier shown here is the one a sharded fleet run uses.
// With -readpass it also replays deterministic read passes over the
// pool and reports the per-replica read split and hedge activity.
func cmdShards(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shards", flag.ContinueOnError)
	var (
		shards   = fs.Int("shards", 4, "shard count")
		replicas = fs.Int("replicas", 2, "replication factor")
		series   = fs.String("series", "nginx", "workload image series")
		versions = fs.Int("versions", 4, "published versions")
		scale    = fs.Float64("scale", 0.25, "workload size scale factor")
		seed     = fs.Int64("seed", 20211107, "workload seed")
		readpass = fs.Int("readpass", 0, "deterministic read passes over the pool (0 = placement only)")
		balance  = fs.Bool("balance", false, "balance reads across replicas (power-of-two-choices)")
		hedge    = fs.Bool("hedge", false, "hedge slow reads to the next replica")
		slow     = fs.String("slow", "", "run read passes after the first with this shard at 10x service time (\"auto\" = busiest primary)")
		jsonOut  = fs.Bool("json", false, "emit the tier stats as JSON instead of the table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("shards: -shards %d: want at least 1", *shards)
	}
	wl, err := fleet.BuildWorkload(fleet.WorkloadOptions{
		Seed:     *seed,
		Scale:    *scale,
		Series:   *series,
		Versions: *versions,
	})
	if err != nil {
		return err
	}
	ids := make([]string, *shards)
	for i := range ids {
		ids[i] = fleet.ShardID(i)
	}
	opts := shardreg.Options{
		Shards:      ids,
		Replication: *replicas,
		Compress:    true,
		Read: shardreg.ReadOptions{
			Balance: *balance,
			Hedge:   *hedge,
			Seed:    uint64(*seed),
		},
	}
	var topo *netsim.Topology
	if *readpass > 0 {
		// Reads are priced over the fleet's registry link class so the
		// balancer and hedge clock see realistic latencies.
		topo, err = netsim.NewTopology(
			netsim.DefaultLAN().WithBandwidth(20.0/1000**scale),
			netsim.DefaultLAN().WithBandwidth(1000.0/1000**scale))
		if err != nil {
			return err
		}
		opts.Topology = topo
	}
	cluster, err := shardreg.New(opts)
	if err != nil {
		return err
	}
	seeded, err := cluster.Seed(wl.Gear)
	if err != nil {
		return err
	}
	if *readpass > 0 {
		fps := wl.Gear.Fingerprints()
		for pass := 0; pass < *readpass; pass++ {
			if pass == 1 && *slow != "" {
				// The first pass always runs healthy so the latency
				// model has a baseline to call the straggler slow.
				victim := *slow
				if victim == "auto" {
					load := cluster.PrimaryLoad()
					most := -1
					for _, id := range cluster.Shards() {
						if load[id] > most {
							most, victim = load[id], id
						}
					}
				}
				if err := topo.SetServiceFactor(victim, 10); err != nil {
					return err
				}
			}
			for _, fp := range fps {
				if _, _, err := cluster.Download(fp); err != nil {
					return err
				}
			}
		}
	}
	st := cluster.Stats()
	if *jsonOut {
		data, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(out, "%s\n", data)
		return err
	}
	fmt.Fprintf(out, "shard ring: %d shards, replication %d, %d virtual nodes/shard\n",
		len(st.Shards), st.Replication, st.VirtualNodes)
	fmt.Fprintf(out, "%-10s %-5s %8s %12s %12s %7s %8s %11s\n",
		"shard", "state", "objects", "stored B", "logical B", "owned", "reads", "read share")
	for _, s := range st.Shards {
		state := "up"
		if s.Down {
			state = "down"
		}
		fmt.Fprintf(out, "%-10s %-5s %8d %12d %12d %6.1f%% %8d %10.1f%%\n",
			s.ID, state, s.Objects, s.StoredBytes, s.LogicalBytes, s.OwnedShare*100,
			s.Reads, s.ReadShare*100)
	}
	fmt.Fprintf(out, "tier: %d objects seeded, %d replica copies, %d B stored\n",
		seeded, st.Objects, st.StoredBytes)
	fmt.Fprintf(out, "reads: %d served, %d balanced; hedges: %d fired, %d won, %d B extra egress\n",
		st.Reads, st.BalancedReads, st.HedgesFired, st.HedgesWon, st.HedgeWasteBytes)
	return nil
}

// cmdFleet runs one scripted fleet scenario in-process — a simulated
// cluster of dockersim daemons over a netsim topology — and prints its
// per-phase accounting. Every run is bit-reproducible from
// (scenario, seed).
func cmdFleet(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	scenario := fs.String("scenario", string(fleet.FlashCrowd), "scenario: flashcrowd, churn, failover, straggler, or mixed")
	nodes := fs.Int("nodes", 64, "fleet size")
	seed := fs.Int64("seed", 20211107, "workload and scenario seed")
	series := fs.String("series", "nginx", "workload image series")
	versions := fs.Int("versions", 4, "published versions the scenario rolls through")
	scale := fs.Float64("scale", 0.25, "workload size scale factor")
	peersOn := fs.Bool("peers", true, "enable peer-to-peer Gear-file exchange")
	shards := fs.Int("shards", 0, "back the fleet with a sharded registry tier of this size (0 = single registry)")
	replicas := fs.Int("replicas", 0, "replicas per object in the shard tier (0 = tier default)")
	balance := fs.Bool("balance", false, "balance shard reads across replicas (power-of-two-choices)")
	hedge := fs.Bool("hedge", false, "hedge slow shard reads to the next replica")
	jsonOut := fs.Bool("json", false, "emit the canonical result JSON instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	wl, err := fleet.BuildWorkload(fleet.WorkloadOptions{
		Seed:     *seed,
		Scale:    *scale,
		Series:   *series,
		Versions: *versions,
	})
	if err != nil {
		return err
	}
	h, err := fleet.New(wl, fleet.Options{
		Nodes:       *nodes,
		Seed:        *seed,
		Peers:       *peersOn,
		Shards:      *shards,
		Replication: *replicas,
		ReadBalance: *balance,
		ReadHedge:   *hedge,
	})
	if err != nil {
		return err
	}
	res, err := h.Run(fleet.Kind(*scenario))
	if err != nil {
		return err
	}
	if *jsonOut {
		data, err := res.Canonical()
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(out, "%s\n", data)
		return err
	}
	res.Print(out)
	fp, err := res.Fingerprint()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fingerprint: %s\n", fp)
	return nil
}
