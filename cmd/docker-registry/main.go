// Command docker-registry runs a standalone Docker-style registry: named
// manifests plus content-addressed compressed layers, deduplicated at
// layer granularity. It stores both regular images and the single-layer
// Gear index images the converter produces.
//
//	GET/PUT /v2/manifests/{name}/{tag}
//	GET     /v2/manifests/            (list references)
//	HEAD/GET/PUT /v2/blobs/{digest}
//
// Usage:
//
//	docker-registry -addr :7000
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"github.com/gear-image/gear/internal/registry"
	"github.com/gear-image/gear/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "docker-registry:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":7000", "listen address")
	flag.Parse()

	reg := registry.New()
	mux := http.NewServeMux()
	mux.Handle("/v2/", registry.NewHandler(reg))
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		s := reg.Stats()
		fmt.Fprintf(w, "manifests=%d blobs=%d blobBytes=%d manifestBytes=%d dedupHits=%d\n",
			s.Manifests, s.Blobs, s.BlobBytes, s.ManifestBytes, s.DedupHits)
	})
	mux.Handle("/metrics", telemetry.Handler(reg))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("docker-registry listening on %s", ln.Addr())
	return http.Serve(ln, mux)
}
