// Command benchguard compares `go test -bench -benchmem` output against
// a committed baseline and fails on allocation regressions.
//
// Usage:
//
//	go test -bench . -benchmem ./... | tee current.txt
//	benchguard -baseline scripts/bench_baseline.txt -current current.txt
//
// Only the allocation columns (B/op, allocs/op) are compared: they are
// deterministic properties of the code, unlike ns/op, which shifts with
// the machine CI happens to land on. A benchmark regresses when its
// current value exceeds baseline*(1+threshold) plus a small absolute
// slack (so a 3-alloc benchmark going to 4 is not a failure). Benchmarks
// present on only one side are reported but never fail the run —
// refreshing the baseline is how new benchmarks get enrolled.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		baseline  = flag.String("baseline", "", "committed baseline benchmark output")
		current   = flag.String("current", "", "freshly produced benchmark output")
		threshold = flag.Float64("threshold", 0.20, "fractional regression allowed per metric")
	)
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -current are required")
		os.Exit(2)
	}
	base, err := parseFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	cur, err := parseFile(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	if compare(os.Stdout, base, cur, *threshold) {
		os.Exit(1)
	}
}

// result is one benchmark's allocation metrics.
type result struct {
	BytesPerOp  float64
	AllocsPerOp float64
	// has marks which metrics the line actually carried (benchmarks run
	// without -benchmem have neither).
	hasBytes, hasAllocs bool
}

func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

// parse reads benchmark lines from standard `go test -bench` output.
// Repeated runs of one benchmark (e.g. -count=3) keep the minimum per
// metric — the least noisy estimate of the code's true cost.
func parse(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, res, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		prev, seen := out[name]
		if !seen {
			out[name] = res
			continue
		}
		if res.hasBytes && (!prev.hasBytes || res.BytesPerOp < prev.BytesPerOp) {
			prev.BytesPerOp, prev.hasBytes = res.BytesPerOp, true
		}
		if res.hasAllocs && (!prev.hasAllocs || res.AllocsPerOp < prev.AllocsPerOp) {
			prev.AllocsPerOp, prev.hasAllocs = res.AllocsPerOp, true
		}
		out[name] = prev
	}
	return out, sc.Err()
}

// parseLine parses one "BenchmarkX-8  100  12 ns/op  34 B/op  5 allocs/op"
// line. The GOMAXPROCS suffix is stripped so baselines compare across
// machines with different core counts.
func parseLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var res result
	// Metrics come as "<value> <unit>" pairs after the iteration count.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		switch fields[i+1] {
		case "B/op":
			res.BytesPerOp, res.hasBytes = v, true
		case "allocs/op":
			res.AllocsPerOp, res.hasAllocs = v, true
		}
	}
	return name, res, true
}

// Absolute slack under which a metric increase is never a regression:
// tiny benchmarks jitter by an allocation or two depending on pool and
// map warm-up, and that noise must not fail CI.
const (
	slackBytes  = 256
	slackAllocs = 4
)

// regressed reports whether cur exceeds base by more than the threshold
// fraction plus the absolute slack.
func regressed(base, cur, threshold, slack float64) bool {
	return cur > base*(1+threshold)+slack
}

// compare prints a per-benchmark verdict table and returns true if any
// benchmark regressed.
func compare(w io.Writer, base, cur map[string]result, threshold float64) bool {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	bad := false
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(w, "MISSING  %s (in baseline, not in current run)\n", name)
			continue
		}
		verdict := "ok"
		if b.hasBytes && c.hasBytes && regressed(b.BytesPerOp, c.BytesPerOp, threshold, slackBytes) {
			verdict = "REGRESSED B/op"
			bad = true
		}
		if b.hasAllocs && c.hasAllocs && regressed(b.AllocsPerOp, c.AllocsPerOp, threshold, slackAllocs) {
			if verdict == "ok" {
				verdict = "REGRESSED allocs/op"
			} else {
				verdict += "+allocs/op"
			}
			bad = true
		}
		fmt.Fprintf(w, "%-8s %s: B/op %.0f -> %.0f, allocs/op %.0f -> %.0f\n",
			verdict, name, b.BytesPerOp, c.BytesPerOp, b.AllocsPerOp, c.AllocsPerOp)
	}
	var fresh []string
	for name := range cur {
		if _, ok := base[name]; !ok {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		fmt.Fprintf(w, "NEW      %s (not in baseline; refresh scripts/bench_baseline.txt to enroll)\n", name)
	}
	if bad {
		fmt.Fprintf(w, "\nFAIL: allocation regression beyond %.0f%% threshold\n", threshold*100)
	} else {
		fmt.Fprintf(w, "\nok: %d benchmarks within %.0f%% of baseline\n", len(names), threshold*100)
	}
	return bad
}
