package main

import (
	"strings"
	"testing"
)

const sampleOut = `goos: linux
goarch: amd64
pkg: github.com/gear-image/gear/internal/hashing
BenchmarkRegistryAssign-8      	    5000	    250000 ns/op	 4184.10 MB/s	    2048 B/op	      40 allocs/op
BenchmarkRegistryAssignAll/workers=4-8 	   10000	    120000 ns/op	    1024 B/op	      20 allocs/op
BenchmarkNoMem-8               	  100000	     10000 ns/op
PASS
`

func TestParse(t *testing.T) {
	res, err := parse(strings.NewReader(sampleOut))
	if err != nil {
		t.Fatal(err)
	}
	a, ok := res["BenchmarkRegistryAssign"]
	if !ok || a.BytesPerOp != 2048 || a.AllocsPerOp != 40 || !a.hasBytes || !a.hasAllocs {
		t.Errorf("BenchmarkRegistryAssign = %+v, %v", a, ok)
	}
	sub, ok := res["BenchmarkRegistryAssignAll/workers=4"]
	if !ok || sub.AllocsPerOp != 20 {
		t.Errorf("subbenchmark = %+v, %v", sub, ok)
	}
	nm, ok := res["BenchmarkNoMem"]
	if !ok || nm.hasBytes || nm.hasAllocs {
		t.Errorf("no-benchmem line = %+v, %v; want present without alloc metrics", nm, ok)
	}
}

func TestParseKeepsMinimumAcrossCounts(t *testing.T) {
	out := `BenchmarkX-8 100 50 ns/op 300 B/op 9 allocs/op
BenchmarkX-8 100 40 ns/op 200 B/op 11 allocs/op
`
	res, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	x := res["BenchmarkX"]
	if x.BytesPerOp != 200 || x.AllocsPerOp != 9 {
		t.Errorf("min-merge = %+v, want B/op 200, allocs/op 9", x)
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := map[string]result{
		"BenchmarkStable":  {BytesPerOp: 10000, AllocsPerOp: 100, hasBytes: true, hasAllocs: true},
		"BenchmarkWorse":   {BytesPerOp: 10000, AllocsPerOp: 100, hasBytes: true, hasAllocs: true},
		"BenchmarkTiny":    {BytesPerOp: 16, AllocsPerOp: 2, hasBytes: true, hasAllocs: true},
		"BenchmarkRemoved": {BytesPerOp: 1, AllocsPerOp: 1, hasBytes: true, hasAllocs: true},
	}
	cur := map[string]result{
		// Within threshold.
		"BenchmarkStable": {BytesPerOp: 11000, AllocsPerOp: 110, hasBytes: true, hasAllocs: true},
		// 2x the bytes: regression.
		"BenchmarkWorse": {BytesPerOp: 20000, AllocsPerOp: 100, hasBytes: true, hasAllocs: true},
		// Doubled but inside absolute slack: not a regression.
		"BenchmarkTiny": {BytesPerOp: 32, AllocsPerOp: 4, hasBytes: true, hasAllocs: true},
		"BenchmarkNew":  {BytesPerOp: 5, AllocsPerOp: 1, hasBytes: true, hasAllocs: true},
	}
	var sb strings.Builder
	if !compare(&sb, base, cur, 0.20) {
		t.Error("compare = ok, want regression")
	}
	out := sb.String()
	for _, want := range []string{
		"REGRESSED B/op BenchmarkWorse",
		"ok       BenchmarkStable",
		"ok       BenchmarkTiny",
		"MISSING  BenchmarkRemoved",
		"NEW      BenchmarkNew",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Reverting the regression makes the run pass.
	cur["BenchmarkWorse"] = base["BenchmarkWorse"]
	sb.Reset()
	if compare(&sb, base, cur, 0.20) {
		t.Errorf("compare after fix = regression, want ok:\n%s", sb.String())
	}
}
