// Command gear-registry runs a standalone Gear file server — the Gear
// Registry of §III-C/§IV: a content-addressed store of Gear files with
// three HTTP verbs:
//
//	GET /gear/query/{fingerprint}
//	PUT /gear/upload/{fingerprint}
//	GET /gear/download/{fingerprint}
//
// Usage:
//
//	gear-registry -addr :7001 -compress
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"github.com/gear-image/gear/internal/gearregistry"
	"github.com/gear-image/gear/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gear-registry:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":7001", "listen address")
		compress = flag.Bool("compress", true, "store objects gzip-compressed")
	)
	flag.Parse()

	reg := gearregistry.New(gearregistry.Options{Compress: *compress})
	mux := http.NewServeMux()
	mux.Handle("/gear/", gearregistry.NewHandler(reg))
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		s := reg.Stats()
		fmt.Fprintf(w, "objects=%d storedBytes=%d logicalBytes=%d dedupHits=%d\n",
			s.Objects, s.StoredBytes, s.LogicalBytes, s.DedupHits)
	})
	mux.Handle("/metrics", telemetry.Handler(reg))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("gear-registry listening on %s (compress=%v)", ln.Addr(), *compress)
	return http.Serve(ln, mux)
}
