// Command benchreport regenerates the tables and figures of the Gear
// paper's evaluation on the synthetic corpus and prints the same rows
// the paper reports, annotated with the paper's own numbers.
//
// Usage:
//
//	benchreport -exp all                 # every experiment, calibrated scale
//	benchreport -exp fig9 -quick         # one experiment, reduced scale
//	benchreport -exp table2 -scale 0.5   # custom scale
//	benchreport -bench BENCH_6.json -pr 6 -quick   # versioned bench snapshot
//	benchreport -checkbench BENCH_6.json           # validate a snapshot
//
// Experiments: inventory, table2, fig2, fig6, fig7, fig8, fig9, fig10,
// fig11, extload, extcache, extparallel, extpush, extp2p, extprefetch,
// extfleet, all.
//
// -bench runs every experiment, timing each and diffing the unified
// telemetry registry around it, and writes the per-experiment wall
// times plus non-zero counter deltas as a schema-checked bench.File
// (internal/bench). -checkbench decodes such a file, validates it, and
// verifies every registered experiment is present.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/gear-image/gear/internal/bench"
	"github.com/gear-image/gear/internal/experiments"
	"github.com/gear-image/gear/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp        = flag.String("exp", "all", "experiment id ("+strings.Join(experiments.IDs(), ", ")+", or all)")
		jsonOut    = flag.Bool("json", false, "emit the result as JSON instead of the text report (single experiment only)")
		quick      = flag.Bool("quick", false, "reduced corpus for a fast run")
		scale      = flag.Float64("scale", 0, "override corpus scale (default 1.0, or the quick preset)")
		seed       = flag.Int64("seed", 0, "override corpus seed")
		versions   = flag.Int("versions", 0, "cap versions per series (0 = all)")
		series     = flag.Int("series-per-category", 0, "cap series per category (0 = all)")
		metrics    = flag.String("metrics", "", "write the run's unified telemetry snapshot (JSON) to this file")
		benchOut   = flag.String("bench", "", "run every experiment and write a versioned bench snapshot (JSON) to this file (requires -pr)")
		pr         = flag.Int("pr", 0, "PR number recorded in the -bench snapshot")
		check      = flag.String("checkbench", "", "decode and validate a bench snapshot, verifying every experiment is present")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run (pprof format) to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile at exit (pprof format) to this file")
	)
	flag.Parse()

	if *check != "" {
		return checkBench(*check, os.Stdout)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchreport: memprofile:", err)
				return
			}
			defer f.Close()
			// The allocs profile covers everything allocated since program
			// start, which is what "where do the hot paths allocate" needs;
			// the heap profile would only show what is still live.
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "benchreport: memprofile:", err)
			}
		}()
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *versions > 0 {
		cfg.VersionsPerSeries = *versions
	}
	if *series > 0 {
		cfg.SeriesPerCategory = *series
	}
	if *metrics != "" {
		// One registry across the whole run: every daemon the experiments
		// build publishes into it, and the snapshot lands in one artifact.
		cfg.Telemetry = telemetry.NewRegistry()
		defer func() {
			f, err := os.Create(*metrics)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchreport: metrics:", err)
				return
			}
			defer f.Close()
			if err := telemetry.EncodeSnapshot(f, cfg.Telemetry.Snapshot()); err != nil {
				fmt.Fprintln(os.Stderr, "benchreport: metrics:", err)
			}
		}()
	}

	if *benchOut != "" {
		if *pr <= 0 {
			return fmt.Errorf("-bench requires -pr N (the PR number the snapshot is committed under)")
		}
		return writeBench(*benchOut, *pr, cfg, os.Stdout)
	}

	if *jsonOut {
		if *exp == "all" {
			return fmt.Errorf("-json requires a single experiment id")
		}
		res, err := experiments.Result(*exp, cfg)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}

	fmt.Printf("gear benchreport: exp=%s scale=%g seed=%d versions=%d series/cat=%d\n",
		*exp, cfg.Scale, cfg.Seed, cfg.VersionsPerSeries, cfg.SeriesPerCategory)
	start := time.Now()
	if err := experiments.Run(*exp, cfg, os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writeBench runs every registered experiment in paper order, timing
// each and diffing the shared telemetry registry around it, and writes
// the result as a versioned bench snapshot.
func writeBench(path string, pr int, cfg experiments.Config, w io.Writer) error {
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	file := &bench.File{
		Schema: bench.Schema,
		PR:     pr,
		Seed:   cfg.Seed,
		Scale:  cfg.Scale,
	}
	fmt.Fprintf(w, "gear benchreport: bench snapshot pr=%d scale=%g seed=%d\n", pr, cfg.Scale, cfg.Seed)
	var ms runtime.MemStats
	for _, r := range experiments.All() {
		fmt.Fprintf(w, "\n=== %s — %s ===\n", r.ID, r.Title)
		before := cfg.Telemetry.Snapshot()
		runtime.ReadMemStats(&ms)
		allocBytes, allocObjects := ms.TotalAlloc, ms.Mallocs
		start := time.Now()
		if err := r.Run(cfg, w); err != nil {
			return fmt.Errorf("bench: %s: %w", r.ID, err)
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&ms)
		diff := cfg.Telemetry.DiffStripped(before)
		e := bench.Experiment{
			ID:           r.ID,
			WallNS:       wall.Nanoseconds(),
			AllocBytes:   int64(ms.TotalAlloc - allocBytes),
			AllocObjects: int64(ms.Mallocs - allocObjects),
		}
		for name, v := range diff.Counters {
			if v != 0 {
				if e.Counters == nil {
					e.Counters = make(map[string]int64)
				}
				e.Counters[name] = v
			}
		}
		file.Experiments = append(file.Experiments, e)
		fmt.Fprintf(w, "[%s: %v, %s allocated in %d objects, %d telemetry counters]\n",
			r.ID, wall.Round(time.Millisecond), fmtBytes(e.AllocBytes), e.AllocObjects, len(e.Counters))
	}
	data, err := bench.Encode(file)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s: %d experiments, %d distinct counters\n",
		path, len(file.Experiments), len(file.CounterNames()))
	return nil
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// checkBench decodes and validates a bench snapshot and verifies every
// registered experiment has an entry.
func checkBench(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	file, err := bench.Decode(data)
	if err != nil {
		return fmt.Errorf("checkbench: %s: %w", path, err)
	}
	var missing []string
	for _, id := range experiments.IDs() {
		if _, ok := file.Experiment(id); !ok {
			missing = append(missing, id)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("checkbench: %s: missing experiments: %s", path, strings.Join(missing, ", "))
	}
	fmt.Fprintf(w, "%s: ok (schema %s, pr %d, %d experiments, %d distinct counters)\n",
		path, file.Schema, file.PR, len(file.Experiments), len(file.CounterNames()))
	return nil
}
