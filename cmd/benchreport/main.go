// Command benchreport regenerates the tables and figures of the Gear
// paper's evaluation on the synthetic corpus and prints the same rows
// the paper reports, annotated with the paper's own numbers.
//
// Usage:
//
//	benchreport -exp all                 # every experiment, calibrated scale
//	benchreport -exp fig9 -quick         # one experiment, reduced scale
//	benchreport -exp table2 -scale 0.5   # custom scale
//
// Experiments: inventory, table2, fig2, fig6, fig7, fig8, fig9, fig10,
// fig11, extload, extcache, extparallel, extpush, extp2p, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/gear-image/gear/internal/experiments"
	"github.com/gear-image/gear/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment id ("+strings.Join(experiments.IDs(), ", ")+", or all)")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON instead of the text report (single experiment only)")
		quick    = flag.Bool("quick", false, "reduced corpus for a fast run")
		scale    = flag.Float64("scale", 0, "override corpus scale (default 1.0, or the quick preset)")
		seed     = flag.Int64("seed", 0, "override corpus seed")
		versions = flag.Int("versions", 0, "cap versions per series (0 = all)")
		series   = flag.Int("series-per-category", 0, "cap series per category (0 = all)")
		metrics  = flag.String("metrics", "", "write the run's unified telemetry snapshot (JSON) to this file")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *versions > 0 {
		cfg.VersionsPerSeries = *versions
	}
	if *series > 0 {
		cfg.SeriesPerCategory = *series
	}
	if *metrics != "" {
		// One registry across the whole run: every daemon the experiments
		// build publishes into it, and the snapshot lands in one artifact.
		cfg.Telemetry = telemetry.NewRegistry()
		defer func() {
			f, err := os.Create(*metrics)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchreport: metrics:", err)
				return
			}
			defer f.Close()
			if err := telemetry.EncodeSnapshot(f, cfg.Telemetry.Snapshot()); err != nil {
				fmt.Fprintln(os.Stderr, "benchreport: metrics:", err)
			}
		}()
	}

	if *jsonOut {
		if *exp == "all" {
			return fmt.Errorf("-json requires a single experiment id")
		}
		res, err := experiments.Result(*exp, cfg)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}

	fmt.Printf("gear benchreport: exp=%s scale=%g seed=%d versions=%d series/cat=%d\n",
		*exp, cfg.Scale, cfg.Seed, cfg.VersionsPerSeries, cfg.SeriesPerCategory)
	start := time.Now()
	if err := experiments.Run(*exp, cfg, os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
