#!/usr/bin/env bash
# statslint: fail the build when an exported *Stats struct is declared
# outside internal/telemetry and is not in scripts/stats_allowlist.txt.
#
# The unified observability layer keeps one metrics registry per daemon
# (internal/telemetry); the grandfathered Stats structs in the allowlist
# are views over those handles. A brand-new Stats struct usually means
# new mutable counters outside the registry — publish them into a
# telemetry.Registry instead, or (for a genuine view) add the
# "path:TypeName" line to the allowlist in the same change.
set -euo pipefail
cd "$(dirname "$0")/.."

allow=scripts/stats_allowlist.txt
status=0

while IFS= read -r line; do
  [ -z "$line" ] && continue
  file=${line%%:*}
  file=${file#./}
  decl=$(printf '%s\n' "$line" | sed -E 's/^[^:]*:[0-9]+:type ([A-Za-z0-9_]*Stats) struct.*/\1/')
  key="${file}:${decl}"
  if ! grep -qxF "$key" "$allow"; then
    echo "statslint: new exported Stats struct: $key" >&2
    echo "  publish into internal/telemetry instead, or allowlist the view in $allow" >&2
    status=1
  fi
done < <(grep -rn --include='*.go' -E '^type [A-Za-z0-9_]*Stats struct' . \
  | grep -v '_test\.go:' | grep -v '^\./internal/telemetry/' || true)

if [ "$status" -eq 0 ]; then
  echo "statslint: ok"
fi
exit $status
