#!/bin/sh
# Run the hot-path layer microbenchmarks with -benchmem and fail on
# allocation regressions (>20% B/op or allocs/op) against the committed
# baseline. Refresh the baseline after a deliberate change with:
#
#   ./scripts/benchguard.sh -update
set -eu
cd "$(dirname "$0")/.."
PKGS="./internal/hashing ./internal/tarstream ./internal/gear/index ./internal/gear/store ./internal/telemetry ./internal/shardreg"
OUT="${BENCH_OUT:-$(mktemp)}"
# shellcheck disable=SC2086
go test -run '^$' -bench . -benchmem -count=1 $PKGS | tee "$OUT.raw"
grep -E '^(goos|goarch|pkg:|Benchmark)' "$OUT.raw" > "$OUT"
if [ "${1:-}" = "-update" ]; then
  cp "$OUT" scripts/bench_baseline.txt
  echo "refreshed scripts/bench_baseline.txt"
  exit 0
fi
go run ./cmd/benchguard -baseline scripts/bench_baseline.txt -current "$OUT"
