module github.com/gear-image/gear

go 1.22
